"""Per-graph memoization for the static analyses.

The analysis chain recomputes its expensive building blocks many times
over: one ``check_boundedness`` call solves the balance equations four
times (consistency, rate safety, liveness, local solutions), and every
MCR/buffer query re-derives the repetition vector and the HSDF
expansion.  This module gives each graph instance a small cache keyed
by the graph's *mutation version*: construction methods bump the
version, which atomically invalidates every memoized result.

Contract for cached values: they are shared — callers must treat
memoized graphs (``as_csdf()``, ``expand_to_hsdf()``) and mappings as
frozen.  All in-tree analyses only read them.

Negative results (inconsistent-rate errors) are cached too, so
``is_consistent`` probes on a bad graph stay cheap.

Delta-aware invalidation
------------------------
Interactive and service traffic is dominated by "same graph, small
delta" edits, so a bump is no longer an undifferentiated event:
:func:`bump_version` records a **mutation record** — the edit's *kind*
(``"binding"`` for weight-only edits such as an execution-time change
that keeps the phase count, ``"structural"`` for everything that can
move rates, tokens or topology) and its *scope* (the touched actor or
channel names).  Three consumers build on the records:

* :func:`analysis_cache` **carries forward** entries whose key tag was
  registered via :func:`register_binding_insensitive` when every bump
  since the entry was cached was binding-only — the repetition vector,
  liveness verdict and HSDF structure survive an execution-time edit
  instead of being recomputed.
* :func:`delta_since` gives analysis code the precise delta between a
  remembered version and now (``binding_only``, touched names), or a
  conservative "unknown" when the log no longer covers the span.
* :func:`content_store` holds **cross-version** memos keyed by content
  fingerprints (e.g. per-SCC MCR results): a stale entry is
  unreachable by construction because its key changed with the
  content, so the store never needs invalidating.

The old one-argument ``bump_version(graph)`` keeps working and is
recorded as a conservative structural bump with unknown scope.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Hashable, Iterable, Mapping, NamedTuple

from .errors import GraphConstructionError

_CACHE_ATTR = "_analysis_cache"
_VERSION_ATTR = "_analysis_version"
_FROZEN_ATTR = "_analysis_frozen"
_MUTLOG_ATTR = "_analysis_mutations"
_CONTENT_ATTR = "_analysis_content"

#: Mutation records kept per graph; a delta spanning more than this
#: many bumps degrades to the conservative "structural, unknown scope".
_MUTATION_LOG_LIMIT = 256

#: Key tags (first tuple element) whose cached values do not depend on
#: execution times — safe to carry across binding-only version bumps.
_BINDING_INSENSITIVE_TAGS: set[str] = set()

_KINDS = ("binding", "structural")


class MutationRecord(NamedTuple):
    """One recorded ``bump_version``: the version *after* the bump, the
    edit kind, and the touched actor/channel names (empty = unknown)."""

    version: int
    kind: str
    touched: frozenset


class MutationDelta(NamedTuple):
    """Aggregate of every mutation between two versions.

    ``known`` is False when the log no longer covers the span (treat as
    an arbitrary structural rewrite).  ``touched`` is the union of the
    recorded scopes, or ``None`` when any record in the span carried no
    scope (meaning "anything may have been touched").
    """

    known: bool
    binding_only: bool
    touched: frozenset | None

    @property
    def conservative(self) -> bool:
        """True when nothing may be reused (unknown or structural)."""
        return not (self.known and self.binding_only)


#: Delta used when the mutation log cannot answer.
UNKNOWN_DELTA = MutationDelta(known=False, binding_only=False, touched=None)


def version_of(graph: Any) -> int:
    """The graph's current mutation version (0 for a fresh graph)."""
    return getattr(graph, _VERSION_ATTR, 0)


def register_binding_insensitive(tag: str) -> None:
    """Declare cache keys tagged ``tag`` (their first tuple element)
    independent of execution times, so :func:`analysis_cache` carries
    them across binding-only version bumps instead of discarding them.

    Only register results that are bit-for-bit reproducible from the
    rates, tokens and topology alone — the incremental differential
    suite (``tests/csdf/test_incremental.py``) asserts exactly that.
    """
    _BINDING_INSENSITIVE_TAGS.add(tag)


def bump_version(graph: Any, kind: str = "structural",
                 scope: Iterable[str] | None = None) -> None:
    """Invalidate cached analyses of ``graph`` (called by the graph
    classes' construction methods and field setters).

    Parameters
    ----------
    kind:
        ``"binding"`` when the edit can only change execution-time
        *values* (phase counts, rates, tokens and topology untouched);
        ``"structural"`` (the default) for everything else.  Callers
        unsure about an edit must use ``"structural"``.
    scope:
        Iterable of touched actor/channel names; ``None``/empty records
        an unknown scope, which downstream consumers treat as "any".
    """
    ensure_mutable(graph)
    if kind not in _KINDS:
        raise ValueError(f"unknown mutation kind {kind!r}; pick one of {_KINDS}")
    version = version_of(graph) + 1
    setattr(graph, _VERSION_ATTR, version)
    log = getattr(graph, _MUTLOG_ATTR, None)
    if log is None:
        log = []
        setattr(graph, _MUTLOG_ATTR, log)
    touched = frozenset(str(name) for name in scope) if scope else frozenset()
    log.append(MutationRecord(version, kind, touched))
    del log[:-_MUTATION_LOG_LIMIT]


def delta_since(graph: Any, version: int) -> MutationDelta:
    """The aggregate mutation delta between ``version`` and now.

    Returns :data:`UNKNOWN_DELTA` when the span is not fully covered by
    the mutation log (too old, trimmed, or ``version`` is from another
    object's timeline).
    """
    current = version_of(graph)
    if version == current:
        return MutationDelta(known=True, binding_only=True, touched=frozenset())
    if version > current:
        return UNKNOWN_DELTA
    log: list[MutationRecord] = getattr(graph, _MUTLOG_ATTR, None) or []
    records = [r for r in log if r.version > version]
    if len(records) != current - version:
        return UNKNOWN_DELTA  # span not fully covered by the log
    binding_only = all(r.kind == "binding" for r in records)
    touched: frozenset | None = frozenset()
    for record in records:
        if not record.touched:
            touched = None  # unscoped bump: anything may have changed
            break
        touched |= record.touched
    return MutationDelta(known=True, binding_only=binding_only, touched=touched)


def freeze(graph: Any) -> Any:
    """Mark ``graph`` immutable: any later mutation (anything that
    would bump the version) raises instead of silently invalidating
    shared state.

    Used on memoized analysis products (``as_csdf()``,
    ``expand_to_hsdf()``): those objects are shared by every caller for
    the parent graph's current version, so structural edits would
    corrupt results for all of them.  Freezing turns that misuse into
    an immediate :class:`~repro.errors.GraphConstructionError`.
    Analysis caches keep working on frozen graphs — memoization is not
    a mutation.
    """
    setattr(graph, _FROZEN_ATTR, True)
    return graph


def is_frozen(graph: Any) -> bool:
    return bool(getattr(graph, _FROZEN_ATTR, False))


def ensure_mutable(graph: Any) -> None:
    """Raise when ``graph`` has been frozen (shared analysis product)."""
    if is_frozen(graph):
        raise GraphConstructionError(
            f"graph {getattr(graph, 'name', graph)!r} is frozen: it is a "
            f"memoized analysis product shared across callers; derive a "
            f"mutable copy (e.g. bind()) instead of mutating it"
        )


def analysis_cache(graph: Any) -> dict:
    """The live cache dict of ``graph`` for its current version.

    On a version change, entries whose key tag was registered
    binding-insensitive are carried forward when every bump since the
    cache was (re)built was binding-only; everything else is dropped.
    """
    version = version_of(graph)
    entry = getattr(graph, _CACHE_ATTR, None)
    if entry is not None and entry[0] == version:
        return entry[1]
    carried: dict = {}
    if entry is not None and entry[1]:
        delta = delta_since(graph, entry[0])
        if not delta.conservative:
            carried = {
                key: value
                for key, value in entry[1].items()
                if isinstance(key, tuple) and key
                and key[0] in _BINDING_INSENSITIVE_TAGS
            }
    setattr(graph, _CACHE_ATTR, (version, carried))
    return carried


class ContentStore:
    """Bounded cross-version memo attached to a graph.

    Unlike :func:`analysis_cache`, entries survive version bumps — so
    keys MUST be content fingerprints (stale content is unreachable
    because its key changed with it), or the caller must revalidate the
    entry against the current version before trusting it (the pattern
    used for "last known template" slots).  Eviction is LRU and
    counted (:attr:`evictions`), so bounded consumers — the resident
    service's result cache and per-worker decode caches — can report
    cache pressure without wrapping the store.
    """

    __slots__ = ("_data", "limit", "evictions")

    def __init__(self, limit: int):
        self._data: OrderedDict = OrderedDict()
        self.limit = limit
        #: Entries dropped by the LRU bound since construction.
        self.evictions = 0

    def get(self, key: Hashable, default: Any = None) -> Any:
        try:
            value = self._data[key]
        except KeyError:
            return default
        self._data.move_to_end(key)
        return value

    def put(self, key: Hashable, value: Any) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.limit:
            self._data.popitem(last=False)
            self.evictions += 1

    def pop(self, key: Hashable, default: Any = None) -> Any:
        """Remove and return ``key``'s entry (``default`` when absent).
        An explicit drop is not an eviction — the counter tracks only
        the LRU bound."""
        return self._data.pop(key, default)

    def clear(self) -> None:
        """Drop every entry (the eviction counter is kept)."""
        self._data.clear()

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)


def content_store(graph: Any, namespace: str, limit: int = 1024) -> ContentStore:
    """The graph's cross-version :class:`ContentStore` for ``namespace``
    (created on first use; the same store is returned thereafter)."""
    stores = getattr(graph, _CONTENT_ATTR, None)
    if stores is None:
        stores = {}
        setattr(graph, _CONTENT_ATTR, stores)
    store = stores.get(namespace)
    if store is None:
        store = ContentStore(limit)
        stores[namespace] = store
    return store


class _Raised:
    """Sentinel wrapping an exception so failures memoize as well."""

    __slots__ = ("error",)

    def __init__(self, error: BaseException):
        self.error = error


def cached(graph: Any, key: Hashable, factory: Callable[[], Any]) -> Any:
    """Memoize ``factory()`` under ``key`` in the graph's cache.

    Exceptions raised by ``factory`` are cached and re-raised on
    subsequent hits (analysis verdicts are deterministic for a given
    graph version).
    """
    cache = analysis_cache(graph)
    if key in cache:
        value = cache[key]
        if isinstance(value, _Raised):
            raise value.error
        return value
    try:
        value = factory()
    except Exception as error:
        cache[key] = _Raised(error)
        raise
    cache[key] = value
    return value


def bindings_key(bindings: Mapping | None) -> tuple:
    """Hashable view of a parameter valuation (order-insensitive).

    Unhashable binding values (lists, dicts, sets) are rejected eagerly
    with a :class:`TypeError` naming the offending parameter — they
    would otherwise fail deep inside a cache-dict lookup with no hint
    of which binding was malformed.

    >>> bindings_key({"q": 2, "p": 1})
    (('p', 1), ('q', 2))
    >>> bindings_key(None)
    ()
    """
    if not bindings:
        return ()
    items = []
    for name, value in bindings.items():
        try:
            hash(value)
        except TypeError:
            raise TypeError(
                f"binding {str(name)!r} has unhashable value {value!r} "
                f"(type {type(value).__name__}); parameter values must be "
                f"hashable scalars such as int"
            ) from None
        items.append((str(name), value))
    return tuple(sorted(items))


def domain_key(domain: Any) -> tuple:
    """Hashable view of a parameter *domain* (order-insensitive).

    Accepts a :class:`repro.csdf.parametric.ParamDomain` (anything with
    a ``key()`` method) or a plain mapping of ``name -> (lo, hi)``;
    used to key piecewise-MCR results per graph version, the same way
    :func:`bindings_key` keys concrete results.  Malformed bounds raise
    an eager :class:`TypeError` naming the parameter.

    >>> domain_key({"q": (2, 4), "p": (1, 8)})
    (('p', 1, 8), ('q', 2, 4))
    >>> domain_key(None)
    ()
    """
    if domain is None:
        return ()
    key = getattr(domain, "key", None)
    if callable(key):
        return key()
    items = []
    for name, bounds in dict(domain).items():
        try:
            lo, hi = bounds
            items.append((str(name), int(lo), int(hi)))
        except (TypeError, ValueError):
            raise TypeError(
                f"domain for {str(name)!r} must be an integer (lo, hi) "
                f"pair, got {bounds!r}"
            ) from None
    return tuple(sorted(items))
