"""repro — a reproduction of *Transaction Parameterized Dataflow*
(Do, Louise, Cohen; DATE 2016).

Subpackages
-----------
:mod:`repro.symbolic`
    Exact polynomial/rational algebra over integer parameters.
:mod:`repro.csdf`
    Cyclo-Static Dataflow: the base model and evaluation baseline.
:mod:`repro.tpdf`
    The TPDF model and its static analyses (the paper's contribution).
:mod:`repro.scheduling`
    Canonical periods, many-core list scheduling, ADF pruning.
:mod:`repro.platform`
    MPPA-256-style clustered machine models.
:mod:`repro.sim`
    Discrete-event execution with control tokens, clocks, deadlines.
:mod:`repro.apps`
    The evaluation case studies (edge detection, OFDM, FM radio).
:mod:`repro.analysis`
    The unified batch front door: consistency, liveness, MCR, buffer
    sizing and self-timed throughput over many graphs in one call,
    with all intermediates shared through per-graph caches.
:mod:`repro.diagnostics`
    Static diagnostics engine: structured lint over both graph models
    with stable codes and soundness-proven ERROR passes.

Quick start::

    from repro.tpdf import fig2_graph, repetition_vector
    q = repetition_vector(fig2_graph())      # {'A': 2, 'B': 2p, ...}
"""

from . import (analysis, apps, csdf, diagnostics, platform, scheduling, sim,
               symbolic, tpdf, util)
from .analysis import (
    EditSession,
    GraphReport,
    analyze,
    analyze_batch,
    probe_capacities,
    simulate,
)
from .diagnostics import Diagnostic, Severity, run_diagnostics
from .errors import (
    AnalysisError,
    BoundednessError,
    DeadlockError,
    DiagnosticsError,
    GraphConstructionError,
    RateSafetyError,
    ReproError,
    SchedulingError,
    SimulationError,
    SymbolicRateError,
)

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "diagnostics",
    "Diagnostic",
    "DiagnosticsError",
    "Severity",
    "run_diagnostics",
    "EditSession",
    "GraphReport",
    "analyze",
    "analyze_batch",
    "probe_capacities",
    "simulate",
    "symbolic",
    "csdf",
    "tpdf",
    "scheduling",
    "platform",
    "sim",
    "apps",
    "util",
    "ReproError",
    "GraphConstructionError",
    "AnalysisError",
    "SymbolicRateError",
    "DeadlockError",
    "RateSafetyError",
    "BoundednessError",
    "SchedulingError",
    "SimulationError",
    "__version__",
]
