"""Rational functions of integer parameters.

Solving the balance equations ``Gamma . r = 0`` (Theorem 1 / Sec. III-A)
by spanning-tree propagation produces intermediate solutions that are
*ratios* of polynomials — e.g. ``r_C = p/2`` in Example 2 of the paper —
before the final normalization to an integer polynomial vector.
:class:`Rat` implements exactly that fragment: a quotient of two
:class:`~repro.symbolic.poly.Poly` kept in a canonical reduced form.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Mapping

from .poly import Poly, PolyLike, poly_gcd


class Rat:
    """A quotient of two polynomials, reduced and sign-normalized."""

    __slots__ = ("num", "den", "_hash")

    def __init__(self, num: PolyLike, den: PolyLike = 1):
        num = Poly.coerce(num)
        den = Poly.coerce(den)
        if den.is_zero():
            raise ZeroDivisionError("rational function with zero denominator")
        if num.is_zero():
            den = Poly.const(1)
        else:
            # Reduce by the (limited) gcd, then normalize the sign and the
            # leading coefficient of the denominator to keep a canonical form.
            g = poly_gcd(num, den)
            if not g.is_const() or g.const_value() != 1:
                reduced_num = num.try_div(g)
                reduced_den = den.try_div(g)
                if reduced_num is not None and reduced_den is not None:
                    num, den = reduced_num, reduced_den
            exact = num.try_div(den)
            if exact is not None:
                num, den = exact, Poly.const(1)
            _, lead = den.leading()
            if lead < 0:
                num, den = -num, -den
            scale = den.content()
            if scale != 1 and scale != 0:
                num = num.scale(1 / scale)
                den = den.scale(1 / scale)
        self.num = num
        self.den = den
        self._hash = hash(("Rat", num, den))

    # -- constructors ---------------------------------------------------
    @staticmethod
    def coerce(value) -> "Rat":
        if isinstance(value, Rat):
            return value
        return Rat(Poly.coerce(value))

    # -- predicates -----------------------------------------------------
    def is_zero(self) -> bool:
        return self.num.is_zero()

    def is_polynomial(self) -> bool:
        return self.den.is_const()

    def as_poly(self) -> Poly:
        """Convert to a polynomial; raises when the denominator is not
        constant (the caller should have normalized first)."""
        if not self.den.is_const():
            exact = self.num.try_div(self.den)
            if exact is not None:
                return exact
            raise ValueError(f"{self} is not a polynomial")
        return self.num.scale(1 / self.den.const_value())

    # -- arithmetic -----------------------------------------------------
    def __add__(self, other) -> "Rat":
        other = Rat.coerce(other)
        return Rat(self.num * other.den + other.num * self.den, self.den * other.den)

    __radd__ = __add__

    def __neg__(self) -> "Rat":
        return Rat(-self.num, self.den)

    def __sub__(self, other) -> "Rat":
        return self + (-Rat.coerce(other))

    def __rsub__(self, other) -> "Rat":
        return Rat.coerce(other) + (-self)

    def __mul__(self, other) -> "Rat":
        other = Rat.coerce(other)
        return Rat(self.num * other.num, self.den * other.den)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Rat":
        other = Rat.coerce(other)
        if other.is_zero():
            raise ZeroDivisionError("division by zero rational function")
        return Rat(self.num * other.den, self.den * other.num)

    def __rtruediv__(self, other) -> "Rat":
        return Rat.coerce(other) / self

    # -- evaluation -----------------------------------------------------
    def evaluate(self, bindings: Mapping) -> Fraction:
        den = self.den.evaluate(bindings)
        if den == 0:
            raise ZeroDivisionError(f"{self} denominator vanishes under {bindings}")
        return self.num.evaluate(bindings) / den

    def subs(self, bindings: Mapping) -> "Rat":
        return Rat(self.num.subs(bindings), self.den.subs(bindings))

    # -- identity --------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, (Rat, Poly, int, Fraction)):
            other = Rat.coerce(other)
            return (self.num * other.den - other.num * self.den).is_zero()
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash

    def __bool__(self) -> bool:
        return not self.is_zero()

    def __repr__(self) -> str:
        return f"Rat({self})"

    def __str__(self) -> str:
        if self.den.is_const() and self.den.const_value() == 1:
            return str(self.num)
        num = str(self.num)
        den = str(self.den)
        if " " in num:
            num = f"({num})"
        if " " in den:
            den = f"({den})"
        return f"{num}/{den}"
