"""Exact symbolic algebra over integer dataflow parameters.

The parametric analyses of TPDF (rate consistency, local solutions,
rate safety) manipulate rates that are polynomials in the integer
parameters of the graph.  This subpackage provides the minimal exact
computer algebra they need; it has no third-party dependencies.

Public API
----------
:class:`Param`, :func:`params`
    Named strictly-positive integer parameters.
:class:`Poly`
    Immutable multivariate polynomials with rational coefficients.
:class:`Rat`
    Reduced quotients of polynomials.
:func:`poly_gcd`, :func:`poly_lcm`, :func:`poly_gcd_many`, :func:`poly_lcm_many`
    (Limited, sound) gcd/lcm used to normalize repetition vectors.
:func:`solve_balance`
    Symbolic balance-equation solver (Theorem 1 of the paper).
"""

from .param import Param, normalize_bindings, params
from .poly import (
    ONE,
    ZERO,
    Poly,
    poly_gcd,
    poly_gcd_many,
    poly_lcm,
    poly_lcm_many,
)
from .rational import Rat
from .linsolve import (
    BalanceEdge,
    InconsistentRatesError,
    consistency_conditions,
    solve_balance,
)

__all__ = [
    "Param",
    "params",
    "normalize_bindings",
    "Poly",
    "Rat",
    "ZERO",
    "ONE",
    "poly_gcd",
    "poly_lcm",
    "poly_gcd_many",
    "poly_lcm_many",
    "solve_balance",
    "consistency_conditions",
    "BalanceEdge",
    "InconsistentRatesError",
]
