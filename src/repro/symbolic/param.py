"""Integer parameters for parameterized dataflow rates.

TPDF rates may be *symbolic*: products and sums of named integer
parameters (the set ``P`` in Definition 2 of the paper).  A
:class:`Param` is a named, strictly positive integer unknown with an
optional closed interval domain, e.g. the vectorization degree ``beta``
of the OFDM case study ranges over ``[1, 100]``.

Parameters compare and hash by name only, so two ``Param("p")`` created
independently denote the same unknown.
"""

from __future__ import annotations

from fractions import Fraction


class Param:
    """A named strictly-positive integer parameter.

    Parameters
    ----------
    name:
        Identifier used in symbolic expressions (e.g. ``"p"``).
    lo, hi:
        Inclusive bounds of the parameter domain.  ``lo`` defaults to 1
        (rates must stay non-negative and repetition vectors strictly
        positive); ``hi`` may be ``None`` for an unbounded parameter.
    """

    __slots__ = ("name", "lo", "hi")

    def __init__(self, name: str, lo: int = 1, hi: int | None = None):
        if not name or not name.replace("_", "").isalnum():
            raise ValueError(f"invalid parameter name: {name!r}")
        if name[0].isdigit():
            raise ValueError(f"parameter name may not start with a digit: {name!r}")
        if lo < 1:
            raise ValueError(f"parameter {name!r}: lower bound must be >= 1, got {lo}")
        if hi is not None and hi < lo:
            raise ValueError(f"parameter {name!r}: empty domain [{lo}, {hi}]")
        self.name = name
        self.lo = lo
        self.hi = hi

    # -- identity ------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, Param):
            return self.name == other.name
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("Param", self.name))

    def __repr__(self) -> str:
        if self.hi is not None:
            return f"Param({self.name!r}, lo={self.lo}, hi={self.hi})"
        if self.lo != 1:
            return f"Param({self.name!r}, lo={self.lo})"
        return f"Param({self.name!r})"

    def __str__(self) -> str:
        return self.name

    # -- domain --------------------------------------------------------
    def contains(self, value: int) -> bool:
        """Return True if ``value`` lies in this parameter's domain."""
        if value < self.lo:
            return False
        if self.hi is not None and value > self.hi:
            return False
        return True

    def sample_values(self, count: int = 3) -> list[int]:
        """Return a few representative domain values (for liveness probing).

        Includes the lower bound, a small successor, and the upper bound
        when finite.  Used by analyses that validate a symbolic property
        on witnesses (e.g. liveness of graphs whose local solutions stay
        parametric).
        """
        values = [self.lo, self.lo + 1, self.lo + 2]
        if self.hi is not None:
            values = [v for v in values if v <= self.hi]
            if self.hi not in values:
                values.append(self.hi)
        return values[:max(count, 1)]

    # -- arithmetic sugar (delegates to Poly) ---------------------------
    def _poly(self):
        from .poly import Poly

        return Poly.var(self.name)

    def __add__(self, other):
        return self._poly() + other

    def __radd__(self, other):
        return other + self._poly()

    def __sub__(self, other):
        return self._poly() - other

    def __rsub__(self, other):
        return other - self._poly()

    def __mul__(self, other):
        return self._poly() * other

    def __rmul__(self, other):
        return other * self._poly()

    def __pow__(self, exponent: int):
        return self._poly() ** exponent

    def __neg__(self):
        return -self._poly()


def params(names: str, lo: int = 1, hi: int | None = None) -> tuple[Param, ...]:
    """Create several parameters at once: ``p, q = params("p q")``."""
    created = tuple(Param(name, lo=lo, hi=hi) for name in names.split())
    if not created:
        raise ValueError("params() requires at least one name")
    return created


Bindings = dict  # mapping from parameter name (or Param) to int


def normalize_bindings(bindings) -> dict[str, Fraction]:
    """Normalize a bindings mapping to ``{name: Fraction}``.

    Accepts ``Param`` or ``str`` keys and any rational value.  Values
    must be integers for repetition vectors to make sense, but fractional
    values are tolerated here because intermediate algebra (e.g. local
    solutions before normalization) can be fractional.
    """
    out: dict[str, Fraction] = {}
    for key, value in bindings.items():
        name = key.name if isinstance(key, Param) else str(key)
        out[name] = Fraction(value)
    return out
