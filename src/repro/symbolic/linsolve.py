"""Symbolic balance-equation solver (Theorem 1 / Sec. III-A).

A consistent dataflow graph satisfies ``Gamma . r = 0`` where the
topology matrix ``Gamma`` holds, per channel, the tokens produced /
consumed during one *cycle* of the producer / consumer (``X_j(tau_j)``
and ``Y_j(tau_j)``).  For parameterized graphs these totals are
polynomials in the graph parameters and the solution vector ``r`` is a
vector of rational functions, normalized here to the minimal strictly
positive integer-polynomial solution (Example 2 of the paper:
``r = [2, 2p, p, p, 2p, p]`` for Fig. 2).

The solver works by spanning-tree propagation over each weakly
connected component, then verifies every non-tree edge symbolically —
exactly the procedure sketched in Sec. III-A ("arbitrarily set one of
the solutions to 1 and recursively find other solutions ... finally, we
normalize the solutions to integers").
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Iterable, Sequence

from .poly import Poly, poly_gcd_many, poly_lcm_many
from .rational import Rat


class InconsistentRatesError(Exception):
    """The balance equations only admit the trivial (zero) solution."""


#: An edge contributes the constraint  produced * r[src] == consumed * r[dst].
BalanceEdge = tuple[Hashable, Hashable, Poly, Poly]


def solve_balance(
    nodes: Sequence[Hashable],
    edges: Iterable[BalanceEdge],
) -> dict[Hashable, Poly]:
    """Solve the balance equations and normalize to integer polynomials.

    Parameters
    ----------
    nodes:
        All graph nodes (actors).  Isolated nodes get solution 1.
    edges:
        Triples-of-four ``(src, dst, produced_per_cycle,
        consumed_per_cycle)``; rates are coerced to :class:`Poly`.

    Returns
    -------
    dict
        Node -> minimal positive integer-polynomial solution component.

    Raises
    ------
    InconsistentRatesError
        When a cycle of constraints is contradictory (Sec. III-A:
        the system must have a non-null solution for all parameter
        values) or when a non-zero production feeds a zero consumption.
    """
    edge_list: list[BalanceEdge] = [
        (src, dst, Poly.coerce(produced), Poly.coerce(consumed))
        for src, dst, produced, consumed in edges
    ]
    _validate_rate_signs(edge_list)

    adjacency: dict[Hashable, list[tuple[Hashable, Poly, Poly]]] = {n: [] for n in nodes}
    for src, dst, produced, consumed in edge_list:
        if src not in adjacency or dst not in adjacency:
            missing = src if src not in adjacency else dst
            raise KeyError(f"edge endpoint {missing!r} is not in the node set")
        # Store both directions so the spanning tree can traverse freely:
        # crossing src->dst multiplies by produced/consumed, and the
        # reverse direction by the inverse ratio.
        adjacency[src].append((dst, produced, consumed))
        adjacency[dst].append((src, consumed, produced))

    solution: dict[Hashable, Rat] = {}
    for component in _components(list(nodes), adjacency):
        _solve_component(component, adjacency, solution)

    _verify_all_edges(edge_list, solution)
    return _normalize_components(list(nodes), adjacency, solution)


def consistency_conditions(
    nodes: Sequence[Hashable],
    edges: Iterable[BalanceEdge],
) -> list[Poly]:
    """Residual constraints that must vanish for consistency.

    Runs the spanning-tree propagation and, instead of raising on a
    violated non-tree edge, collects the numerator of the residual
    ``produced * r_src - consumed * r_dst`` as a polynomial constraint.
    An empty list means the system is consistent for *all* parameter
    values; otherwise the graph is consistent exactly for the parameter
    valuations annihilating every returned polynomial (e.g. a returned
    ``p - 3`` means "consistent iff p = 3").

    Raises :class:`InconsistentRatesError` only for structural
    impossibilities (production into zero consumption).
    """
    edge_list: list[BalanceEdge] = [
        (src, dst, Poly.coerce(produced), Poly.coerce(consumed))
        for src, dst, produced, consumed in edges
    ]
    _validate_rate_signs(edge_list)
    adjacency: dict[Hashable, list[tuple[Hashable, Poly, Poly]]] = {n: [] for n in nodes}
    for src, dst, produced, consumed in edge_list:
        adjacency[src].append((dst, produced, consumed))
        adjacency[dst].append((src, consumed, produced))
    solution: dict[Hashable, Rat] = {}
    for component in _components(list(nodes), adjacency):
        _solve_component(component, adjacency, solution)
    conditions: list[Poly] = []
    seen: set[Poly] = set()
    for src, dst, produced, consumed in edge_list:
        lhs = solution[src] * Rat(produced)
        rhs = solution[dst] * Rat(consumed)
        residual = (lhs - rhs).num
        if residual.is_zero():
            continue
        # Normalize the constraint: strip content and sign.
        content = residual.content()
        if content not in (0, 1):
            residual = residual.scale(1 / content)
        if residual.leading()[1] < 0:
            residual = -residual
        if residual not in seen:
            seen.add(residual)
            conditions.append(residual)
    return conditions


def _validate_rate_signs(edge_list: list[BalanceEdge]) -> None:
    for src, dst, produced, consumed in edge_list:
        for rate, role, node in ((produced, "production", src), (consumed, "consumption", dst)):
            if not rate.has_nonnegative_coefficients():
                raise InconsistentRatesError(
                    f"{role} rate {rate} of {node!r} may be negative for some "
                    f"parameter values"
                )


def _components(
    nodes: list[Hashable],
    adjacency: dict[Hashable, list[tuple[Hashable, Poly, Poly]]],
) -> list[list[Hashable]]:
    seen: set[Hashable] = set()
    components: list[list[Hashable]] = []
    for start in nodes:
        if start in seen:
            continue
        component: list[Hashable] = []
        queue = deque([start])
        seen.add(start)
        while queue:
            node = queue.popleft()
            component.append(node)
            for neighbour, _, _ in adjacency[node]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    queue.append(neighbour)
        components.append(component)
    return components


def _solve_component(
    component: list[Hashable],
    adjacency: dict[Hashable, list[tuple[Hashable, Poly, Poly]]],
    solution: dict[Hashable, Rat],
) -> None:
    root = component[0]
    solution[root] = Rat(1)
    queue = deque([root])
    while queue:
        node = queue.popleft()
        r_node = solution[node]
        for neighbour, out_rate, in_rate in adjacency[node]:
            # Constraint across this edge: out_rate * r[node] == in_rate * r[neighbour]
            if neighbour in solution:
                continue
            if in_rate.is_zero():
                if out_rate.is_zero():
                    continue  # vacuous edge; neighbour reached some other way
                raise InconsistentRatesError(
                    f"channel {node!r} -> {neighbour!r} produces {out_rate} "
                    f"per cycle but consumes nothing: only the trivial "
                    f"solution exists"
                )
            solution[neighbour] = r_node * Rat(out_rate, in_rate)
            queue.append(neighbour)
    for node in component:
        if node not in solution:
            # Reachable only through vacuous (0,0) edges: unconstrained.
            solution[node] = Rat(1)


def _verify_all_edges(edge_list: list[BalanceEdge], solution: dict[Hashable, Rat]) -> None:
    for src, dst, produced, consumed in edge_list:
        lhs = solution[src] * Rat(produced)
        rhs = solution[dst] * Rat(consumed)
        if lhs != rhs:
            raise InconsistentRatesError(
                f"balance violated on channel {src!r} -> {dst!r}: "
                f"{produced} * {solution[src]} != {consumed} * {solution[dst]}"
            )


def _normalize_components(
    nodes: list[Hashable],
    adjacency: dict[Hashable, list[tuple[Hashable, Poly, Poly]]],
    solution: dict[Hashable, Rat],
) -> dict[Hashable, Poly]:
    normalized: dict[Hashable, Poly] = {}
    for component in _components(nodes, adjacency):
        rats = [solution[node] for node in component]
        # Clear polynomial denominators.
        denominator_lcm = poly_lcm_many([r.den for r in rats])
        polys: list[Poly] = []
        for rat in rats:
            factor = denominator_lcm.try_div(rat.den)
            if factor is None:  # pragma: no cover - lcm is a common multiple
                raise ArithmeticError(f"lcm {denominator_lcm} not divisible by {rat.den}")
            polys.append(rat.num * factor)
        # Clear rational coefficients.
        coeff_lcm = 1
        for poly in polys:
            d = poly.coefficient_lcm_denominator()
            g = _int_gcd(coeff_lcm, d)
            coeff_lcm = coeff_lcm * d // g
        polys = [poly.scale(coeff_lcm) for poly in polys]
        # Divide by the common factor to get the minimal solution.
        common = poly_gcd_many(polys)
        if not common.is_zero():
            reduced = [poly.try_div(common) for poly in polys]
            if all(p is not None for p in reduced):
                polys = reduced  # type: ignore[assignment]
        for node, poly in zip(component, polys):
            if poly.is_zero() or not poly.has_nonnegative_coefficients():
                raise InconsistentRatesError(
                    f"normalized solution for {node!r} is {poly}, which is "
                    f"not strictly positive for all parameter values"
                )
            normalized[node] = poly
    return normalized


def _int_gcd(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return a
