"""Exact multivariate polynomials over integer parameters.

This is the algebraic core of the parametric analyses in the paper:
balance equations (Sec. III-A), local solutions (Def. 4) and rate-safety
checks (Def. 5) all manipulate rates that are polynomials in the integer
parameters ``P`` of a TPDF graph, e.g. ``beta*(N + L)`` for the OFDM
source actor.

Coefficients are :class:`fractions.Fraction` so every operation is
exact; monomials are products of parameter powers.  The class supports
the small amount of computer algebra the analyses need:

* ring arithmetic (``+``, ``-``, ``*``, integer ``**``),
* exact division (:meth:`try_div`) by multivariate long division,
* a *limited* but sound gcd (:func:`poly_gcd`): content gcd, common
  monomial factor, and mutual-divisibility detection — enough for
  dataflow rate vectors, which are (sums of) monomials in practice,
* evaluation and partial substitution under parameter bindings.

Polynomials are immutable and hashable.
"""

from __future__ import annotations

import math
from fractions import Fraction
from functools import cmp_to_key
from typing import Iterable, Mapping, Union

from .param import Param, normalize_bindings

#: A monomial key: sorted tuple of (parameter name, positive exponent).
MonomialKey = tuple[tuple[str, int], ...]

#: Anything coercible to a polynomial.
PolyLike = Union["Poly", Param, int, Fraction]

_EMPTY: MonomialKey = ()


def _mono_mul(a: MonomialKey, b: MonomialKey) -> MonomialKey:
    """Multiply two monomial keys."""
    if not a:
        return b
    if not b:
        return a
    powers: dict[str, int] = dict(a)
    for name, exp in b:
        powers[name] = powers.get(name, 0) + exp
    return tuple(sorted(powers.items()))


def _mono_try_div(a: MonomialKey, b: MonomialKey) -> MonomialKey | None:
    """Divide monomial ``a`` by ``b``; return None if not divisible."""
    powers: dict[str, int] = dict(a)
    for name, exp in b:
        have = powers.get(name, 0)
        if have < exp:
            return None
        if have == exp:
            del powers[name]
        else:
            powers[name] = have - exp
    return tuple(sorted(powers.items()))


def _mono_gcd(a: MonomialKey, b: MonomialKey) -> MonomialKey:
    """Greatest common monomial factor."""
    if not a or not b:
        return _EMPTY
    other = dict(b)
    common = []
    for name, exp in a:
        if name in other:
            common.append((name, min(exp, other[name])))
    return tuple(sorted(common))


def _mono_degree(a: MonomialKey) -> int:
    return sum(exp for _, exp in a)


def _mono_cmp(a: MonomialKey, b: MonomialKey) -> int:
    """Graded-lexicographic comparison (a proper monomial order).

    Total degree first; ties broken lexicographically with
    alphabetically-earlier variables more significant and higher
    exponents larger.  A consistent term order is what makes the
    multivariate long division in :meth:`Poly.try_div` terminate with a
    correct verdict.
    """
    da, db = _mono_degree(a), _mono_degree(b)
    if da != db:
        return 1 if da > db else -1
    ia, ib = 0, 0
    while ia < len(a) or ib < len(b):
        name_a = a[ia][0] if ia < len(a) else None
        name_b = b[ib][0] if ib < len(b) else None
        if name_a == name_b:
            exp_a, exp_b = a[ia][1], b[ib][1]
            if exp_a != exp_b:
                return 1 if exp_a > exp_b else -1
            ia += 1
            ib += 1
        elif name_b is None or (name_a is not None and name_a < name_b):
            # `a` has the more significant variable with positive power.
            return 1
        else:
            return -1
    return 0


_MONO_ORDER = cmp_to_key(_mono_cmp)


def _mono_order_key(a: MonomialKey):
    """Graded-lexicographic order key (usable with sorted/max)."""
    return _MONO_ORDER(a)


def _frac_gcd(a: Fraction, b: Fraction) -> Fraction:
    """gcd extended to rationals: gcd(p/q, r/s) = gcd(p,r)/lcm(q,s)."""
    if a == 0:
        return abs(b)
    if b == 0:
        return abs(a)
    num = math.gcd(abs(a.numerator), abs(b.numerator))
    den = a.denominator * b.denominator // math.gcd(a.denominator, b.denominator)
    return Fraction(num, den)


def _frac_lcm(a: Fraction, b: Fraction) -> Fraction:
    if a == 0 or b == 0:
        return Fraction(0)
    g = _frac_gcd(a, b)
    return abs(a * b) / g


class Poly:
    """An immutable multivariate polynomial with rational coefficients."""

    __slots__ = ("_terms", "_hash")

    def __init__(self, terms: Mapping[MonomialKey, Fraction] | None = None):
        cleaned: dict[MonomialKey, Fraction] = {}
        if terms:
            for key, coeff in terms.items():
                coeff = Fraction(coeff)
                if coeff != 0:
                    cleaned[key] = cleaned.get(key, Fraction(0)) + coeff
            cleaned = {k: c for k, c in cleaned.items() if c != 0}
        self._terms = cleaned
        self._hash = hash(tuple(sorted(self._terms.items())))

    # -- constructors ---------------------------------------------------
    @staticmethod
    def const(value) -> "Poly":
        """Polynomial for a rational constant."""
        value = Fraction(value)
        if value == 0:
            return Poly()
        return Poly({_EMPTY: value})

    @staticmethod
    def var(name: str) -> "Poly":
        """Polynomial for a single parameter."""
        return Poly({((name, 1),): Fraction(1)})

    @staticmethod
    def coerce(value: PolyLike) -> "Poly":
        """Coerce ints, Fractions and Params into polynomials."""
        if isinstance(value, Poly):
            return value
        if isinstance(value, Param):
            return Poly.var(value.name)
        if isinstance(value, (int, Fraction)):
            return Poly.const(value)
        raise TypeError(f"cannot coerce {value!r} to Poly")

    # -- inspection -----------------------------------------------------
    @property
    def terms(self) -> dict[MonomialKey, Fraction]:
        """The term dictionary (monomial key -> coefficient), copied."""
        return dict(self._terms)

    def is_zero(self) -> bool:
        return not self._terms

    def is_const(self) -> bool:
        return not self._terms or (len(self._terms) == 1 and _EMPTY in self._terms)

    def is_monomial(self) -> bool:
        """True when the polynomial has at most one term."""
        return len(self._terms) <= 1

    def is_integer_const(self) -> bool:
        return self.is_const() and self.const_value().denominator == 1

    def const_value(self) -> Fraction:
        """The constant value; raises if the polynomial is not constant."""
        if self.is_zero():
            return Fraction(0)
        if not self.is_const():
            raise ValueError(f"{self} is not a constant")
        return self._terms[_EMPTY]

    def degree(self) -> int:
        """Total degree (0 for constants, -1 for the zero polynomial)."""
        if self.is_zero():
            return -1
        return max(_mono_degree(k) for k in self._terms)

    def variables(self) -> set[str]:
        """The set of parameter names occurring in this polynomial."""
        names: set[str] = set()
        for key in self._terms:
            for name, _ in key:
                names.add(name)
        return names

    def leading(self) -> tuple[MonomialKey, Fraction]:
        """Leading (monomial, coefficient) under graded-lex order."""
        if self.is_zero():
            raise ValueError("zero polynomial has no leading term")
        key = max(self._terms, key=_mono_order_key)
        return key, self._terms[key]

    def content(self) -> Fraction:
        """gcd of all coefficients (positive), 0 for the zero polynomial."""
        result = Fraction(0)
        for coeff in self._terms.values():
            result = _frac_gcd(result, coeff)
        return result

    def monomial_content(self) -> MonomialKey:
        """Largest monomial dividing every term."""
        keys = iter(self._terms)
        try:
            common = next(keys)
        except StopIteration:
            return _EMPTY
        for key in keys:
            common = _mono_gcd(common, key)
            if not common:
                break
        return common

    def coefficient_lcm_denominator(self) -> int:
        """lcm of all coefficient denominators (1 for integer polys)."""
        result = 1
        for coeff in self._terms.values():
            result = result * coeff.denominator // math.gcd(result, coeff.denominator)
        return result

    def has_nonnegative_coefficients(self) -> bool:
        """Sufficient condition for the polynomial to be >= 0 whenever
        all parameters are >= 0 (rates and repetition components must be
        non-negative for every parameter valuation)."""
        return all(coeff >= 0 for coeff in self._terms.values())

    # -- arithmetic -----------------------------------------------------
    def __add__(self, other: PolyLike) -> "Poly":
        other = Poly.coerce(other)
        terms = dict(self._terms)
        for key, coeff in other._terms.items():
            terms[key] = terms.get(key, Fraction(0)) + coeff
        return Poly(terms)

    __radd__ = __add__

    def __neg__(self) -> "Poly":
        return Poly({k: -c for k, c in self._terms.items()})

    def __sub__(self, other: PolyLike) -> "Poly":
        return self + (-Poly.coerce(other))

    def __rsub__(self, other: PolyLike) -> "Poly":
        return Poly.coerce(other) + (-self)

    def __mul__(self, other: PolyLike) -> "Poly":
        other = Poly.coerce(other)
        terms: dict[MonomialKey, Fraction] = {}
        for ka, ca in self._terms.items():
            for kb, cb in other._terms.items():
                key = _mono_mul(ka, kb)
                terms[key] = terms.get(key, Fraction(0)) + ca * cb
        return Poly(terms)

    __rmul__ = __mul__

    def __pow__(self, exponent: int) -> "Poly":
        if not isinstance(exponent, int) or exponent < 0:
            raise ValueError("polynomial exponent must be a non-negative integer")
        result = Poly.const(1)
        base = self
        while exponent:
            if exponent & 1:
                result = result * base
            base = base * base
            exponent >>= 1
        return result

    def __truediv__(self, other: PolyLike):
        """Division producing a :class:`repro.symbolic.rational.Rat`."""
        from .rational import Rat

        return Rat(self, Poly.coerce(other))

    def scale(self, factor) -> "Poly":
        """Multiply every coefficient by a rational constant."""
        factor = Fraction(factor)
        return Poly({k: c * factor for k, c in self._terms.items()})

    # -- exact division --------------------------------------------------
    def try_div(self, divisor: PolyLike) -> "Poly | None":
        """Exact polynomial division; None when ``divisor`` does not
        divide ``self``.

        Uses multivariate long division under graded-lex order.  For an
        exact multiple the single-divisor algorithm always succeeds, so
        ``None`` genuinely means "not divisible".
        """
        divisor = Poly.coerce(divisor)
        if divisor.is_zero():
            raise ZeroDivisionError("polynomial division by zero")
        if self.is_zero():
            return Poly()
        if divisor.is_const():
            inv = 1 / divisor.const_value()
            return self.scale(inv)
        lead_key, lead_coeff = divisor.leading()
        quotient: dict[MonomialKey, Fraction] = {}
        remainder = self
        while not remainder.is_zero():
            rk, rc = remainder.leading()
            qk = _mono_try_div(rk, lead_key)
            if qk is None:
                return None
            qc = rc / lead_coeff
            quotient[qk] = quotient.get(qk, Fraction(0)) + qc
            remainder = remainder - Poly({qk: qc}) * divisor
        return Poly(quotient)

    def divides(self, other: PolyLike) -> bool:
        """True when ``self`` exactly divides ``other``."""
        return Poly.coerce(other).try_div(self) is not None

    # -- evaluation -------------------------------------------------------
    def evaluate(self, bindings: Mapping) -> Fraction:
        """Evaluate under complete bindings; raises KeyError when a
        parameter is unbound."""
        named = normalize_bindings(bindings)
        total = Fraction(0)
        for key, coeff in self._terms.items():
            value = coeff
            for name, exp in key:
                value *= named[name] ** exp
            total += value
        return total

    def evaluate_int(self, bindings: Mapping) -> int:
        """Evaluate and require an integer result."""
        value = self.evaluate(bindings)
        if value.denominator != 1:
            raise ValueError(f"{self} evaluates to non-integer {value} under {bindings}")
        return int(value)

    def subs(self, bindings: Mapping) -> "Poly":
        """Partial substitution: bind some parameters, keep the rest."""
        named = normalize_bindings(bindings)
        result = Poly()
        for key, coeff in self._terms.items():
            factor = Fraction(1)
            residual: list[tuple[str, int]] = []
            for name, exp in key:
                if name in named:
                    factor *= named[name] ** exp
                else:
                    residual.append((name, exp))
            result = result + Poly({tuple(sorted(residual)): coeff * factor})
        return result

    # -- identity ----------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, (Poly, Param, int, Fraction)):
            return (self - Poly.coerce(other)).is_zero()
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash

    def __bool__(self) -> bool:
        return not self.is_zero()

    # -- rendering -----------------------------------------------------------
    def __repr__(self) -> str:
        return f"Poly({self})"

    def __str__(self) -> str:
        if self.is_zero():
            return "0"
        parts: list[str] = []
        for key in sorted(self._terms, key=_mono_order_key, reverse=True):
            coeff = self._terms[key]
            body = "*".join(
                name if exp == 1 else f"{name}**{exp}" for name, exp in key
            )
            if not body:
                text = str(coeff)
            elif coeff == 1:
                text = body
            elif coeff == -1:
                text = f"-{body}"
            else:
                text = f"{coeff}*{body}"
            parts.append(text)
        rendered = parts[0]
        for part in parts[1:]:
            rendered += f" - {part[1:]}" if part.startswith("-") else f" + {part}"
        return rendered


ZERO = Poly()
ONE = Poly.const(1)


def poly_gcd(a: PolyLike, b: PolyLike) -> Poly:
    """A limited-but-sound polynomial gcd.

    Computed as ``gcd(content(a), content(b)) * gcd(primitive(a),
    primitive(b))`` where the primitive-part gcd covers the fragment the
    analyses use: common monomial factor, and the full primitive part
    when one primitive part divides the other.  Over rational
    coefficients any constant "divides" any polynomial, so contents are
    handled separately — that is what makes the gcd suitable for
    normalizing repetition vectors to *integers* (``gcd(2, p) = 1``, not
    ``2``).  For dataflow rate vectors — monomials and small binomials —
    this is the true gcd; in pathological cases it may under-approximate
    (still sound: normalized repetition vectors stay valid, merely
    non-minimal).
    """
    a = Poly.coerce(a)
    b = Poly.coerce(b)
    if a.is_zero():
        return b if b.has_nonnegative_coefficients() else -b
    if b.is_zero():
        return a if a.has_nonnegative_coefficients() else -a
    content = _frac_gcd(a.content(), b.content())
    prim_a = a.scale(1 / a.content())
    prim_b = b.scale(1 / b.content())
    if prim_a.leading()[1] < 0:
        prim_a = -prim_a
    if prim_b.leading()[1] < 0:
        prim_b = -prim_b
    if prim_b.divides(prim_a):
        prim = prim_b
    elif prim_a.divides(prim_b):
        prim = prim_a
    else:
        prim = Poly({_mono_gcd(prim_a.monomial_content(), prim_b.monomial_content()): Fraction(1)})
    return prim.scale(content)


def poly_lcm(a: PolyLike, b: PolyLike) -> Poly:
    """lcm via ``a*b / gcd(a,b)`` (exact by construction of the gcd)."""
    a = Poly.coerce(a)
    b = Poly.coerce(b)
    if a.is_zero() or b.is_zero():
        return ZERO
    g = poly_gcd(a, b)
    quotient = a.try_div(g)
    if quotient is None:  # pragma: no cover - gcd always divides
        raise ArithmeticError(f"gcd {g} does not divide {a}")
    result = quotient * b
    if not result.has_nonnegative_coefficients() and (-result).has_nonnegative_coefficients():
        result = -result
    return result


def poly_gcd_many(values: Iterable[PolyLike]) -> Poly:
    """gcd of a collection (0 for an empty collection)."""
    result = ZERO
    for value in values:
        result = poly_gcd(result, value)
    return result


def poly_lcm_many(values: Iterable[PolyLike]) -> Poly:
    """lcm of a collection (1 for an empty collection)."""
    result = ONE
    for value in values:
        result = poly_lcm(result, value)
    return result
