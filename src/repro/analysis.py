"""``repro.analysis`` — the unified batch analysis front door.

One call runs the whole static chain over a graph (or many graphs)
with every intermediate shared through the per-graph caches of
:mod:`repro.cache`:

* **consistency** and the (symbolic + concrete) repetition vector;
* **liveness** (TPDF cycle analysis, or a sequential-schedule probe
  for plain CSDF);
* **MCR** — the throughput bound, by Howard's policy iteration;
* **buffer sizing** — peaks of a buffer-minimizing iteration;
* **self-timed throughput** — steady-state period of the timed
  event-driven execution, on the dependency-driven event core of
  :mod:`repro.csdf.eventloop` (only actors adjacent to changed
  channels are re-examined per event; differentially pinned against
  the retained full-scan reference loop).

The point of the batch shape: a sweep that used to re-derive the
repetition vector and HSDF expansion for every query (one per beta
point, one per analysis kind) now derives each once per graph.  Used
by the ``analyze`` CLI subcommand and the scalability/Fig. 8 benches.

Graphs in a batch are independent, so the batch is also the unit of
**parallelism**: with ``jobs`` the batch is sharded by graph identity
(items of the same graph stay together so worker-side caches are
shared), packed into chunks, and fanned out over a
``ProcessPoolExecutor``.  Graphs cross the process boundary through
the pickle-safe codec of :mod:`repro.io` (live graphs carry caches,
callables and port back-references that must not be pickled); each
worker decodes a graph once per batch, warms its caches, and reuses it
for every chunk that references it.  Results come back index-tagged
and are reassembled in input order with the caller's original graph
objects re-attached — the parallel path is bit-identical to the
sequential one (see ``tests/test_analysis_parallel.py``).

With a ``parametric_domain`` the chain additionally runs the
**parametric (symbolic) MCR** stage (:mod:`repro.csdf.parametric`):
instead of the throughput bound at one ``bindings`` point, the report
carries a :class:`ParametricReport` holding the bound as a
piecewise-symbolic function over a whole parameter box — one
computation replacing a per-binding sweep.

Typical use::

    # same results, 8 worker processes, ~25 items per task
    reports = analyze_batch(sweep_items, jobs=8, chunk_size=25)

Examples
--------
>>> from repro.analysis import analyze
>>> from repro.csdf import CSDFGraph
>>> g = CSDFGraph("pair")
>>> _ = g.add_actor("a", exec_time=2)
>>> _ = g.add_actor("b", exec_time=1)
>>> _ = g.add_channel("ab", "a", "b")
>>> report = analyze(g)
>>> report.bounded, report.repetition, report.mcr
(True, {'a': 1, 'b': 1}, 2.0)

Symbolic throughput over a parameter box instead of one binding:

>>> from repro.symbolic import Param
>>> p = Param("p")
>>> h = CSDFGraph("fanout")
>>> _ = h.add_actor("src", exec_time=3)
>>> _ = h.add_actor("snk", exec_time=2)
>>> _ = h.add_channel("c", "src", "snk", production=p, consumption=1)
>>> report = analyze(h, parametric_domain={"p": (1, 8)})
>>> report.parametric.candidates
['ring:src = 3', 'ring:snk = 2*p']
>>> report.parametric.regions
['p=1..1 -> ring:src', 'p=2..8 -> ring:snk']
>>> report.parametric.mcr_at({"p": 4})
8.0
"""

from __future__ import annotations

import dataclasses
import itertools
import os
import time
import uuid
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Union

from .cache import ContentStore, cached, register_binding_insensitive, version_of
from .csdf.buffers import minimal_buffer_schedule
from .csdf.graph import CSDFGraph
from .csdf.mcr import max_cycle_ratio
from .csdf.throughput import TimedResult, self_timed_execution
from .errors import DiagnosticsError, GraphConstructionError, ReproError
from .symbolic import InconsistentRatesError
from .tpdf.graph import TPDFGraph

#: What an analysis stage may legitimately raise.
_STAGE_ERRORS = (ReproError, InconsistentRatesError)

AnyGraph = Union[CSDFGraph, TPDFGraph]
#: An analyze_batch item: a graph, or a (graph, bindings) pair.
BatchItem = Union[AnyGraph, tuple]


@dataclass
class GraphReport:
    """Aggregate outcome of one graph's analysis chain.

    Stages that could not run record a reason in :attr:`skipped`
    (e.g. performance stages of a parametric graph analyzed without
    bindings) or :attr:`errors` (stage raised).
    """

    graph: AnyGraph
    name: str
    bindings: dict
    consistent: bool = False
    #: symbolic repetition vector, rendered (``{"B": "2*p"}``)
    repetition_symbolic: dict[str, str] = field(default_factory=dict)
    #: concrete repetition vector under ``bindings`` (when evaluable)
    repetition: dict[str, int] | None = None
    live: bool | None = None
    #: rate safety (TPDF graphs only; None for plain CSDF)
    safe: bool | None = None
    bounded: bool | None = None
    #: maximum cycle ratio — the steady-state period bound
    mcr: float | None = None
    #: per-channel buffer peaks of a buffer-minimizing iteration
    buffers: dict[str, int] | None = None
    #: timed self-timed execution (period, throughput, peaks)
    timed: TimedResult | None = None
    #: parametric (symbolic) MCR stage, when a domain was requested
    parametric: "ParametricReport | None" = None
    #: stage -> reason for stages that did not run
    skipped: dict[str, str] = field(default_factory=dict)
    #: stage -> error message for stages that raised
    errors: dict[str, str] = field(default_factory=dict)
    #: static diagnostics attached by ``analyze(lint="warn")`` —
    #: presentation data like ``elapsed``, outside the fingerprint
    #: (the same graph analyzed with ``lint="off"`` must stay
    #: bit-identical).
    diagnostics: tuple = ()
    #: wall-clock cost of this report, seconds
    elapsed: float = 0.0
    #: mutation version of the analyzed graph object when the report
    #: was produced — lets ``analyze(reuse_from=...)`` detect identical
    #: resubmissions in O(1).  Not part of the fingerprint (it tracks
    #: object history, not analysis values).
    graph_version: int | None = None
    #: normalized tuple of the analyze() options the report was
    #: computed under (same role as :attr:`graph_version`).
    analysis_options: tuple | None = None

    @property
    def total_buffer(self) -> int | None:
        return None if self.buffers is None else sum(self.buffers.values())

    @property
    def period(self) -> float | None:
        return None if self.timed is None else self.timed.iteration_period

    @property
    def throughput(self) -> float | None:
        return None if self.timed is None else self.timed.throughput

    def verdict_reasons(self) -> list[str]:
        """Why the graph is not provably bounded (empty when it is)."""
        reasons = []
        if not self.consistent:
            reasons.append("rate inconsistent: "
                           + self.errors.get("consistency", "no non-trivial solution"))
        if self.safe is False:
            reasons.append("rate safety violated")
        if self.live is False:
            reasons.append("not live")
        if "liveness" in self.errors:
            reasons.append(f"liveness analysis failed: {self.errors['liveness']}")
        return reasons

    def fingerprint(self) -> tuple:
        """Deterministic value identity of the analysis outcome.

        Covers every analysis-result field and excludes the
        process-dependent ones: the graph *object* (workers analyze a
        decoded copy), ``elapsed`` (wall clock), and the
        ``graph_version``/``analysis_options`` provenance pair (object
        history, not analysis values).  The parallel and incremental
        differential suites assert parallel == sequential and
        warm == cold on exactly this value — float fields included
        bit-for-bit, no tolerance.
        """
        timed = None
        if self.timed is not None:
            timed = (
                self.timed.makespan,
                self.timed.iterations,
                self.timed.firings,
                tuple(self.timed.iteration_ends),
                tuple(sorted(self.timed.peaks.items())),
            )
        return (
            self.name,
            tuple(sorted(self.bindings.items())),
            self.consistent,
            tuple(sorted(self.repetition_symbolic.items())),
            None if self.repetition is None else tuple(sorted(self.repetition.items())),
            self.live,
            self.safe,
            self.bounded,
            self.mcr,
            None if self.buffers is None else tuple(sorted(self.buffers.items())),
            timed,
            None if self.parametric is None else self.parametric.fingerprint(),
            tuple(sorted(self.skipped.items())),
            tuple(sorted(self.errors.items())),
        )

    def summary(self) -> str:
        """Multi-line human-readable digest (exactly what the CLI
        ``analyze`` subcommand prints per graph)."""
        lines = [f"graph: {self.name}"]
        verdict = (
            "bounded (consistent, rate safe, live)"
            if self.bounded
            else "NOT provably bounded: " + "; ".join(self.verdict_reasons())
        )
        lines.append(f"verdict: {verdict}")
        if self.consistent:
            lines.append("repetition vector:")
            q = self.repetition or self.repetition_symbolic
            for actor, count in q.items():
                lines.append(f"  q[{actor}] = {count}")
        if self.safe is not None:
            lines.append(f"rate safety: {'safe' if self.safe else 'violated'}")
        elif "liveness" in self.errors:
            lines.append("rate safety: unknown (analysis failed)")
        if self.live is not None:
            lines.append(f"liveness: {'live' if self.live else 'DEADLOCK'}")
        elif not self.consistent:
            lines.append("liveness: skipped (inconsistent)")
        if self.mcr is not None:
            lines.append(f"max cycle ratio (period bound): {self.mcr:.4f}")
        if self.timed is not None:
            lines.append(f"self-timed steady period:       {self.period:.4f}")
            lines.append(f"throughput:                     {self.throughput:.4f} iterations/time")
        if self.buffers is not None:
            lines.append(f"min single-core buffer total:   {self.total_buffer}")
        if self.parametric is not None:
            lines.extend(self.parametric.summary().splitlines())
        for stage, reason in self.skipped.items():
            lines.append(f"({stage} skipped: {reason})")
        for stage, message in self.errors.items():
            if stage != "consistency":
                lines.append(f"({stage} FAILED: {message})")
        return "\n".join(lines)


@dataclass
class ParametricReport:
    """Outcome of the parametric (symbolic) MCR stage.

    Produced by :func:`analyze_parametric` (or by :func:`analyze` when
    a ``parametric_domain`` is passed) and carried on
    :attr:`GraphReport.parametric`.  Holds no graph reference — the
    payload is plain symbolic data, so it crosses the parallel batch
    service's process boundary untouched (the underlying
    :class:`~repro.csdf.parametric.PiecewiseMCR` is pickle-safe and is
    memoized per graph version like every other analysis product).
    """

    name: str
    #: the requested integer box, ``{"p": (1, 8)}``
    domain: dict[str, tuple[int, int]]
    #: the piecewise-symbolic MCR (None when the stage failed)
    piecewise: object | None = None
    #: stage -> error message for failures (unsupported class, ...)
    errors: dict[str, str] = field(default_factory=dict)
    #: wall-clock cost of this stage, seconds
    elapsed: float = 0.0

    @property
    def candidates(self) -> list[str]:
        """Rendered symbolic candidates (``"ring:B = 2*p"``)."""
        if self.piecewise is None:
            return []
        return [str(c) for c in self.piecewise.candidates]

    @property
    def regions(self) -> list[str]:
        """Rendered dominance regions (``"p=2..8 -> ring:B"``)."""
        if self.piecewise is None:
            return []
        return [
            ", ".join(f"{n}={lo}..{hi}" for n, lo, hi in region.bounds)
            + f" -> {self.piecewise.candidates[region.candidate].label}"
            for region in self.piecewise.regions
        ]

    def mcr_at(self, bindings: Mapping) -> float:
        """Evaluate the piecewise MCR at one valuation (float view)."""
        if self.piecewise is None:
            raise ReproError(
                f"parametric MCR of {self.name!r} unavailable: "
                + "; ".join(self.errors.values())
            )
        return self.piecewise.evaluate_float(bindings)

    def fingerprint(self) -> tuple:
        """Deterministic value identity (parallel == sequential)."""
        return (
            self.name,
            tuple(sorted((n, lo, hi) for n, (lo, hi) in self.domain.items())),
            None if self.piecewise is None else self.piecewise.fingerprint(),
            tuple(sorted(self.errors.items())),
        )

    def summary(self) -> str:
        """Multi-line digest (folded into ``GraphReport.summary``)."""
        if self.piecewise is not None:
            return self.piecewise.describe()
        reasons = "; ".join(
            f"{stage}: {message}" for stage, message in self.errors.items()
        )
        return f"(parametric MCR FAILED: {reasons})"


def analyze_parametric(
    graph: AnyGraph,
    domain,
    *,
    max_boxes: int = 20_000,
) -> ParametricReport:
    """Run the parametric (symbolic) MCR stage over one graph.

    ``domain`` is anything :meth:`~repro.csdf.parametric.ParamDomain.of`
    accepts — a :class:`~repro.csdf.parametric.ParamDomain`, a mapping
    ``{"p": (1, 8)}``, or CLI-style specs ``["p=1..8"]`` — and must
    bind every parameter of the graph.  Failures (graph outside the
    supported class, unbound parameters, deadlocking core) are recorded
    in :attr:`ParametricReport.errors` instead of raising, mirroring
    how :func:`analyze` treats its stages.
    """
    from .csdf.parametric import ParamDomain, parametric_mcr

    start = time.perf_counter()
    dom = ParamDomain.of(domain)
    report = ParametricReport(name=graph.name, domain=dom.ranges)
    try:
        report.piecewise = parametric_mcr(
            _csdf_view(graph), dom, max_boxes=max_boxes
        )
    except _STAGE_ERRORS as exc:
        report.errors["parametric_mcr"] = str(exc)
    report.elapsed = time.perf_counter() - start
    return report


def _csdf_view(graph: AnyGraph) -> CSDFGraph:
    return graph.as_csdf() if isinstance(graph, TPDFGraph) else graph


def _is_concrete(csdf: CSDFGraph, bindings: Mapping | None) -> bool:
    return not (csdf.parameters() - set(bindings or {}))


def _lint_gate(graph: AnyGraph, bindings: Mapping | None,
               mode: str) -> list:
    """Run the diagnostics engine for ``analyze(lint=...)``.

    ``mode="error"`` raises :class:`~repro.errors.DiagnosticsError`
    (carrying the full diagnostic list) when any ERROR-severity defect
    is present; otherwise the list is returned for attachment to the
    report.
    """
    from .diagnostics import Severity, run_diagnostics

    findings = run_diagnostics(graph, bindings=bindings)
    fatal = [d for d in findings if d.severity is Severity.ERROR]
    if mode == "error" and fatal:
        summary = "; ".join(f"{d.code} {d.subject}" for d in fatal[:5])
        if len(fatal) > 5:
            summary += f" (+{len(fatal) - 5} more)"
        raise DiagnosticsError(
            f"graph {graph.name!r} fails static diagnostics: {summary}",
            diagnostics=findings,
        )
    return findings


def analyze(
    graph: AnyGraph,
    bindings: Mapping | None = None,
    *,
    iterations: int = 4,
    with_liveness: bool = True,
    with_mcr: bool = True,
    with_buffers: bool = True,
    with_throughput: bool = True,
    parametric_domain=None,
    backend: str = "arrays",
    lint: str = "off",
    reuse_from: "GraphReport | None" = None,
) -> GraphReport:
    """Run the full analysis chain over one graph.

    Accepts TPDF and plain CSDF graphs.  Performance stages (MCR,
    buffers, self-timed throughput) need a concrete valuation; on a
    parametric graph without (complete) ``bindings`` they are recorded
    as skipped instead of raising.  All intermediates are memoized on
    the graph, so re-analyzing (or analyzing per-stage elsewhere) costs
    nothing extra.

    ``backend`` selects the execution core of the self-timed
    throughput stage (``"arrays"``, ``"wakeup"`` or ``"reference"``,
    see :func:`repro.csdf.throughput.self_timed_execution`); all three
    produce bit-identical reports, so this is a cost knob, not a
    semantics knob.

    With ``parametric_domain`` (a parameter box, see
    :func:`analyze_parametric`) the report additionally carries the
    **parametric MCR** — the throughput bound as a piecewise-symbolic
    function over the whole domain, replacing a per-binding sweep.

    ``reuse_from`` accepts the previous report of the **same graph
    object** (edit traffic: analyze, edit, re-analyze): an identical
    resubmission — same graph version, bindings and options — returns a
    copy of the previous report in O(1), and anything else falls
    through to the chain, which is itself delta-aware (the per-graph
    caches carry binding-insensitive products across execution-time
    edits and re-solve only the SCCs an edit touched, see
    :mod:`repro.cache` and :mod:`repro.csdf.mcr`).  Warm results are
    bit-for-bit identical to cold analysis (``fingerprint()``).  See
    :class:`EditSession` for the convenience wrapper.

    ``lint`` runs the static diagnostics engine
    (:func:`repro.diagnostics.run_diagnostics`) before the stages:
    ``"error"`` raises :class:`~repro.errors.DiagnosticsError` when any
    ERROR-severity defect is found (rejecting statically-doomed graphs
    without burning analysis time), ``"warn"`` attaches the diagnostic
    list to ``report.diagnostics``, and ``"off"`` (the default) skips
    the engine entirely.
    """
    start = time.perf_counter()
    if lint not in ("off", "warn", "error"):
        raise ValueError(
            f"lint must be 'off', 'warn' or 'error', got {lint!r}"
        )
    options_key = (
        iterations, with_liveness, with_mcr, with_buffers, with_throughput,
        backend, None if parametric_domain is None else repr(parametric_domain),
        lint,
    )
    if reuse_from is not None:
        if reuse_from.graph is not graph:
            raise ValueError(
                "reuse_from must be a report of the same graph object "
                f"(got a report of {reuse_from.name!r})"
            )
        if (reuse_from.graph_version == version_of(graph)
                and reuse_from.analysis_options == options_key
                and reuse_from.bindings == dict(bindings or {})):
            return dataclasses.replace(
                reuse_from, elapsed=time.perf_counter() - start
            )
    lint_findings: tuple = ()
    if lint != "off":
        lint_findings = tuple(_lint_gate(graph, bindings, lint))
    report = GraphReport(
        graph=graph, name=graph.name, bindings=dict(bindings or {}),
        graph_version=version_of(graph), analysis_options=options_key,
        diagnostics=lint_findings,
    )
    csdf = _csdf_view(graph)

    # -- consistency + repetition vector -------------------------------
    from .csdf.analysis import concrete_repetition_vector, repetition_vector

    try:
        q_sym = repetition_vector(csdf)
        report.consistent = True
        report.repetition_symbolic = {name: str(poly) for name, poly in q_sym.items()}
    except _STAGE_ERRORS as exc:
        report.errors["consistency"] = str(exc)
        report.elapsed = time.perf_counter() - start
        return report

    concrete = _is_concrete(csdf, bindings)
    if concrete:
        try:
            report.repetition = concrete_repetition_vector(csdf, bindings)
        except _STAGE_ERRORS as exc:
            # Consistent but not evaluable at this valuation (e.g. a
            # fractional repetition count): report and stop the
            # concrete stages.
            report.errors["repetition"] = str(exc)
            concrete = False

    # -- rate safety + liveness ----------------------------------------
    if with_liveness:
        try:
            if isinstance(graph, TPDFGraph):
                # The full Theorem 2 chain (consistency is a cache hit).
                from .tpdf.boundedness import check_boundedness

                verdict = check_boundedness(graph)
                report.safe = verdict.safety.safe
                report.live = verdict.liveness.live
                report.bounded = verdict.bounded
            elif concrete:
                from .csdf.schedule import is_live

                report.live = is_live(csdf, bindings)
            else:
                report.skipped["liveness"] = "parametric CSDF graph: pass bindings"
        except _STAGE_ERRORS as exc:
            report.errors["liveness"] = str(exc)
    if "liveness" in report.errors:
        # Boundedness was never established — don't report it proven.
        report.bounded = False
    elif report.bounded is None:
        report.bounded = report.consistent and (report.live is not False)

    # -- performance stages (need a concrete valuation) -----------------
    unbound = sorted(csdf.parameters() - set(bindings or {}))
    reason = f"parametric (unbound: {', '.join(unbound)})" if unbound else None
    for stage, enabled in (
        ("mcr", with_mcr), ("buffers", with_buffers), ("throughput", with_throughput),
    ):
        if enabled and not concrete:
            report.skipped[stage] = reason or "repetition vector not concrete"
    if concrete and report.live is not False:
        if with_mcr:
            try:
                report.mcr = max_cycle_ratio(csdf, bindings)
            except _STAGE_ERRORS as exc:
                report.errors["mcr"] = str(exc)
        if with_buffers:
            try:
                _, peaks = minimal_buffer_schedule(csdf, bindings)
                report.buffers = dict(peaks)
            except _STAGE_ERRORS as exc:
                report.errors["buffers"] = str(exc)
        if with_throughput:
            try:
                report.timed = self_timed_execution(
                    csdf, bindings, iterations=iterations, backend=backend
                )
            except _STAGE_ERRORS as exc:
                report.errors["throughput"] = str(exc)
    elif concrete and report.live is False:
        for stage in ("mcr", "buffers", "throughput"):
            report.skipped.setdefault(stage, "graph deadlocks")

    # -- parametric (symbolic) MCR over a requested domain ---------------
    if parametric_domain is not None:
        report.parametric = analyze_parametric(graph, parametric_domain)

    report.elapsed = time.perf_counter() - start
    return report


# Warm-up only touches the rate algebra, so the marker survives
# binding-only bumps along with the products it certifies.
register_binding_insensitive("warm_graph")


def warm_graph(graph: AnyGraph) -> AnyGraph:
    """Pre-populate the binding-independent caches of ``graph``.

    Runs the CSDF abstraction and the symbolic balance solve (the two
    intermediates every later stage keys off), caching negative
    verdicts too.  Workers call this once per decoded graph so all
    items that share the graph — across chunks of the same batch —
    start from warm caches, mirroring what the sequential path gets
    from analyzing the same live object repeatedly.

    Idempotent per (graph, version): a completed warm-up leaves a
    marker in the graph's cache, and later calls return without
    re-entering the solver stages at all (they used to re-walk the
    whole warm-up chain on every call, betting on the per-stage caches
    — which re-derived everything whenever an earlier stage had been
    evicted or the call raced a fresh decode).
    """

    def _warm() -> bool:
        from .csdf.analysis import repetition_vector

        try:
            repetition_vector(_csdf_view(graph))
        except _STAGE_ERRORS:
            pass  # the negative result is memoized as well
        return True

    cached(graph, ("warm_graph",), _warm)
    return graph


def probe_capacities(
    graph: AnyGraph,
    capacities_list,
    bindings: Mapping | None = None,
    *,
    iterations: int = 4,
) -> list:
    """Evaluate many capacity vectors for one graph as a single
    lock-step batch — the analysis-level front door of
    :func:`repro.csdf.batchexec.self_timed_execution_batch`.

    All vectors share one memoized SoA template (cloned into ``(K, n)``
    planes) and advance wavefront by wavefront together; runs that
    deadlock drop out without stalling the rest.  The returned list is
    aligned with ``capacities_list``: a
    :class:`~repro.csdf.throughput.TimedResult` per feasible vector and
    the :class:`~repro.errors.DeadlockError` per deadlocking one —
    bit for bit what K sequential
    ``self_timed_execution(backend="arrays", capacities=...)`` calls
    produce, blocked sets included.  TPDF graphs are probed through
    their CSDF abstraction (the same view the throughput stage of
    :func:`analyze` executes).
    """
    from .csdf.batchexec import self_timed_execution_batch

    return self_timed_execution_batch(
        _csdf_view(graph), bindings, iterations=iterations,
        capacities_list=list(capacities_list),
    )


def simulate(
    graph: TPDFGraph,
    bindings: Mapping | None = None,
    *,
    until: float | None = None,
    limits: Mapping[str, int] | None = None,
    max_firings: int | None = None,
    cores: int | None = None,
    capacities: Mapping[str, int] | None = None,
    ready_core: str = "arrays",
    record_values: bool = False,
):
    """Run the discrete-event TPDF simulator and return its
    :class:`~repro.sim.Trace` — the analysis-level front door of
    :class:`repro.sim.Simulator`.

    This is the entry point for *functional* workloads: graphs whose
    kernels carry ``function``/``meta["time_fn"]`` hooks, control
    actors, clocks, or whose behaviour under a ``cores`` budget or
    channel ``capacities`` matters.  (For pure rate/timing questions
    :func:`analyze` is cheaper — its throughput stage runs the CSDF
    abstraction without the TPDF machinery.)

    ``ready_core`` defaults to ``"arrays"``, the schedule-plane /
    value-plane split: scheduling runs on flat counters over the
    memoized SoA template and token payloads are materialized only on
    channels with a value-touching endpoint, so timing-only graphs
    degenerate to the counters-only fast path.  All cores produce
    bit-identical traces (``Trace.fingerprint()``).

    At least one stop condition (``until``, ``limits`` or
    ``max_firings``) is required — a live unbounded graph would
    otherwise simulate forever.
    """
    if not isinstance(graph, TPDFGraph):
        raise ValueError(
            "simulate() runs TPDF graphs; for plain CSDF use "
            "analyze() or repro.csdf.throughput.self_timed_execution()"
        )
    if until is None and limits is None and max_firings is None:
        raise ValueError(
            "simulate() needs a stop condition: until=, limits= or "
            "max_firings="
        )
    from .sim import Simulator

    sim = Simulator(
        graph, bindings, cores=cores, record_values=record_values,
        ready_core=ready_core, capacities=capacities,
    )
    sim.run(until=until, limits=limits,
            max_firings=max_firings if max_firings is not None else 1_000_000)
    return sim.trace


class EditSession:
    """Edit/re-analyze helper for interactive and service traffic.

    Wraps one mutable :class:`~repro.csdf.graph.CSDFGraph` and chains
    every :meth:`analyze` call through ``analyze(reuse_from=...)``, so
    repeated analysis across small edits pays only for what each edit
    invalidated (and an unchanged resubmission is O(1)).  The edit
    helpers delegate to the graph's own mutators — the session adds no
    private state beyond the last report, so mixing direct graph edits
    with session edits is fine.

    Example::

        session = EditSession(graph)
        before = session.analyze()
        session.set_exec_time("worker", 7)      # binding-only edit
        after = session.analyze()               # warm re-analysis

    ``after`` is bit-for-bit what a cold analysis of the edited graph
    would produce (the incremental differential suite asserts exactly
    that on randomized edit scripts).
    """

    def __init__(self, graph: CSDFGraph, bindings: Mapping | None = None,
                 **options):
        if not isinstance(graph, CSDFGraph):
            raise TypeError(
                f"EditSession edits CSDF graphs; got {type(graph).__name__} "
                f"(TPDF graphs: edit kernels/ports directly and call analyze)"
            )
        self.graph = graph
        self.bindings = dict(bindings) if bindings else None
        self.options = dict(options)
        self.report: GraphReport | None = None

    # -- analysis --------------------------------------------------------
    def analyze(self, bindings: Mapping | None = None, **overrides) -> GraphReport:
        """Re-analyze the graph, reusing the previous report's warmth.

        ``bindings``/keyword overrides replace the session defaults for
        this call only; the resulting report becomes the new
        ``reuse_from`` anchor.
        """
        options = {**self.options, **overrides}
        self.report = analyze(
            self.graph,
            self.bindings if bindings is None else bindings,
            reuse_from=self.report,
            **options,
        )
        return self.report

    # -- pre-flight ------------------------------------------------------
    def preflight(self, edits: Iterable[Mapping],
                  bindings: Mapping | None = None) -> list:
        """Dry-run an edit script on a scratch copy of the graph.

        Replays every edit on a value-identical clone, then runs the
        static diagnostics engine on the result.  A script that cannot
        even apply raises its structural error immediately; a script
        whose end state carries ERROR-severity diagnostics raises
        :class:`~repro.errors.DiagnosticsError` — in both cases the
        session's real graph is untouched, so a fatal script fails
        *fast* instead of crashing (or corrupting the session) half-way
        through a replay.  Returns the full diagnostic list otherwise
        (warnings included, for display).
        """
        from .diagnostics import Severity, run_diagnostics

        scratch = self.graph.bind({})  # mutable value-identical clone
        scratch.name = self.graph.name
        probe = EditSession(scratch)
        for index, edit in enumerate(edits):
            try:
                probe.apply(edit)
            except KeyError as exc:
                raise GraphConstructionError(
                    f"edit {index} ({edit.get('op', '?')!r}) references an "
                    f"unknown actor/channel: {exc}"
                ) from exc
        findings = run_diagnostics(
            scratch, bindings=self.bindings if bindings is None else bindings
        )
        fatal = [d for d in findings if d.severity is Severity.ERROR]
        if fatal:
            summary = "; ".join(f"{d.code} {d.subject}" for d in fatal[:5])
            raise DiagnosticsError(
                f"edit script would leave {self.graph.name!r} statically "
                f"broken: {summary}",
                diagnostics=findings,
            )
        return findings

    # -- edits -----------------------------------------------------------
    def set_exec_time(self, actor: str, value) -> "EditSession":
        self.graph.actor(actor).set_exec_time(value)
        return self

    def set_production(self, channel: str, value) -> "EditSession":
        self.graph.channel(channel).production = value
        return self

    def set_consumption(self, channel: str, value) -> "EditSession":
        self.graph.channel(channel).consumption = value
        return self

    def set_initial_tokens(self, channel: str, value: int) -> "EditSession":
        self.graph.channel(channel).initial_tokens = value
        return self

    def add_actor(self, name: str, exec_time=1.0) -> "EditSession":
        self.graph.add_actor(name, exec_time=exec_time)
        return self

    def add_channel(self, name, src: str, dst: str, production=1,
                    consumption=1, initial_tokens: int = 0) -> "EditSession":
        self.graph.add_channel(name, src, dst, production=production,
                               consumption=consumption,
                               initial_tokens=initial_tokens)
        return self

    def remove_channel(self, name: str) -> "EditSession":
        self.graph.remove_channel(name)
        return self

    def remove_actor(self, name: str) -> "EditSession":
        self.graph.remove_actor(name)
        return self

    #: ``apply()`` dispatch: op name -> (method, required keys, optional keys).
    _OPS = {
        "set_exec_time": ("set_exec_time", ("actor", "value"), ()),
        "set_production": ("set_production", ("channel", "value"), ()),
        "set_consumption": ("set_consumption", ("channel", "value"), ()),
        "set_initial_tokens": ("set_initial_tokens", ("channel", "value"), ()),
        "add_actor": ("add_actor", ("name",), ("exec_time",)),
        "add_channel": ("add_channel", ("src", "dst"),
                        ("name", "production", "consumption", "initial_tokens")),
        "remove_channel": ("remove_channel", ("name",), ()),
        "remove_actor": ("remove_actor", ("name",), ()),
    }

    def apply(self, edit: Mapping) -> "EditSession":
        """Apply one declarative edit, e.g. from a JSON edit script:
        ``{"op": "set_exec_time", "actor": "worker", "value": 7}``.
        Used by the CLI's ``analyze --edits`` replay."""
        op = edit.get("op")
        spec = self._OPS.get(op)
        if spec is None:
            raise GraphConstructionError(
                f"unknown edit op {op!r}; expected one of {sorted(self._OPS)}"
            )
        method, required, optional = spec
        kwargs = {}
        for field_name in required:
            if field_name not in edit:
                raise GraphConstructionError(
                    f"edit op {op!r} is missing required field {field_name!r}"
                )
            kwargs[field_name] = edit[field_name]
        for field_name in optional:
            if field_name in edit:
                kwargs[field_name] = edit[field_name]
        extra = set(edit) - {"op", *required, *optional}
        if extra:
            raise GraphConstructionError(
                f"edit op {op!r} got unexpected fields {sorted(extra)}"
            )
        if op == "add_channel":
            kwargs.setdefault("name", None)
        getattr(self, method)(**kwargs)
        return self


#: Per-worker decoded-graph cache: (batch token, shard rank) -> graph.
#: Each batch gets a fresh uuid token because forked workers inherit
#: this store's current contents: entries created by in-process calls
#: (tests, diagnostics) — or by the resident service's persistent
#: pool — must never collide with a new batch's ranks.  The LRU bound
#: keeps such inherited/accumulated entries from growing without limit.
_WORKER_GRAPHS = ContentStore(limit=32)


def _worker_graph(key: tuple, payload: Mapping) -> AnyGraph:
    """Decode (or fetch the already-decoded, warm) graph for ``key``."""
    from .io import graph_from_payload

    graph = _WORKER_GRAPHS.get(key)
    if graph is None:
        graph = warm_graph(graph_from_payload(payload))
        _WORKER_GRAPHS.put(key, graph)
    return graph


def _analyze_chunk(chunk: tuple, options: dict) -> list[tuple[int, GraphReport]]:
    """Worker entry point: analyze one chunk of (index, key, bindings)
    items against the chunk's payload table; returns index-tagged
    reports with the graph detached (re-attached parent-side)."""
    payloads, work = chunk
    out = []
    prev_key = None
    prev_report = None
    for index, key, bindings in work:
        reuse = prev_report if key == prev_key else None
        report = analyze(_worker_graph(key, payloads[key]), bindings,
                         reuse_from=reuse, **options)
        out.append((index, report))
        prev_key, prev_report = key, report
    for _, report in out:  # detach after the loop: reuse_from needs the graph
        report.graph = None
    return out


def _effective_jobs(jobs: int | None) -> int:
    """``None``/1 -> sequential; 0 -> one worker per CPU; n -> n."""
    if jobs is None:
        return 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def analyze_batch(
    items: Iterable[BatchItem],
    *,
    jobs: int | None = None,
    chunk_size: int | None = None,
    **options,
) -> list[GraphReport]:
    """Analyze many graphs (or (graph, bindings) pairs) in one call.

    Options are forwarded to :func:`analyze`.  Analyses of the same
    graph object under different bindings share every binding-independent
    intermediate (symbolic repetition vector, consistency verdict) and
    all binding-keyed caches (HSDF expansion, MCR, the SoA execution
    template the throughput stage and :func:`probe_capacities` clone
    their runs from) via the per-graph cache, which is what makes
    parameter sweeps cheap; the parallel path shards by graph identity
    so same-structure job groups land on one worker and share the
    same warmed template there.

    Parameters
    ----------
    jobs:
        Worker processes.  ``None`` or ``1`` analyzes in-process
        (sequentially, sharing live caches); ``0`` uses one worker per
        CPU; ``n >= 2`` fans the batch out over a process pool.  The
        result list is identical (same values, same order) either way;
        parallel reports re-attach the caller's graph objects but are
        computed on decoded copies, so worker-side cache warm-up never
        mutates caller state.
    chunk_size:
        Items per worker task.  Defaults to ~4 tasks per worker, after
        sharding by graph identity (items of the same graph are kept
        contiguous so each worker decodes and warms a graph at most
        once per batch).  Smaller chunks balance better; larger chunks
        amortize decode/dispatch overhead.
    """
    pairs: list[tuple[AnyGraph, Mapping | None]] = []
    for item in items:
        if isinstance(item, tuple):
            graph, bindings = item
        else:
            graph, bindings = item, None
        pairs.append((graph, bindings))

    workers = _effective_jobs(jobs)
    if workers <= 1 or len(pairs) <= 1:
        reports = []
        prev_graph = None
        prev_report = None
        for graph, bindings in pairs:
            reuse = prev_report if graph is prev_graph else None
            report = analyze(graph, bindings, reuse_from=reuse, **options)
            reports.append(report)
            prev_graph, prev_report = graph, report
        return reports
    return _analyze_batch_parallel(pairs, workers, chunk_size, options)


def _analyze_batch_parallel(
    pairs: list[tuple[AnyGraph, Mapping | None]],
    jobs: int,
    chunk_size: int | None,
    options: dict,
) -> list[GraphReport]:
    from .io import graph_to_payload

    # -- shard: one stable key per distinct graph object ----------------
    token = uuid.uuid4().hex
    key_of: dict[int, tuple] = {}
    payloads: dict[tuple, dict] = {}
    item_keys: list[tuple] = []
    for graph, _ in pairs:
        key = key_of.get(id(graph))
        if key is None:
            key = (token, len(key_of))
            key_of[id(graph)] = key
            payloads[key] = graph_to_payload(graph)
        item_keys.append(key)

    # Items of the same shard (graph) stay contiguous; ties keep input
    # order, and index tags make reassembly order-exact regardless.
    order = sorted(range(len(pairs)), key=lambda i: (item_keys[i][1], i))

    if chunk_size is None:
        chunk_size = max(1, -(-len(pairs) // (jobs * 4)))
    elif chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")

    chunks = []
    for start in range(0, len(order), chunk_size):
        indices = order[start:start + chunk_size]
        work = [(i, item_keys[i], pairs[i][1]) for i in indices]
        table = {key: payloads[key] for key in {item_keys[i] for i in indices}}
        chunks.append((table, work))

    results: list[GraphReport | None] = [None] * len(pairs)
    with ProcessPoolExecutor(max_workers=min(jobs, len(chunks))) as pool:
        for piece in pool.map(_analyze_chunk, chunks, itertools.repeat(options)):
            for index, report in piece:
                report.graph = pairs[index][0]
                results[index] = report
    return results  # type: ignore[return-value]  # every slot is filled
