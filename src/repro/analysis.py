"""``repro.analysis`` — the unified batch analysis front door.

One call runs the whole static chain over a graph (or many graphs)
with every intermediate shared through the per-graph caches of
:mod:`repro.cache`:

* **consistency** and the (symbolic + concrete) repetition vector;
* **liveness** (TPDF cycle analysis, or a sequential-schedule probe
  for plain CSDF);
* **MCR** — the throughput bound, by Howard's policy iteration;
* **buffer sizing** — peaks of a buffer-minimizing iteration;
* **self-timed throughput** — steady-state period of the timed
  event-driven execution.

The point of the batch shape: a sweep that used to re-derive the
repetition vector and HSDF expansion for every query (one per beta
point, one per analysis kind) now derives each once per graph.  Used
by the ``analyze`` CLI subcommand and the scalability/Fig. 8 benches.

Typical use::

    from repro.analysis import analyze, analyze_batch

    report = analyze(graph, bindings={"p": 2})
    print(report.summary())

    for report in analyze_batch([(g, {"p": 2}), (h, None)]):
        ...
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Union

from .csdf.buffers import minimal_buffer_schedule
from .csdf.graph import CSDFGraph
from .csdf.mcr import max_cycle_ratio
from .csdf.throughput import TimedResult, self_timed_execution
from .errors import ReproError
from .symbolic import InconsistentRatesError
from .tpdf.graph import TPDFGraph

#: What an analysis stage may legitimately raise.
_STAGE_ERRORS = (ReproError, InconsistentRatesError)

AnyGraph = Union[CSDFGraph, TPDFGraph]
#: An analyze_batch item: a graph, or a (graph, bindings) pair.
BatchItem = Union[AnyGraph, tuple]


@dataclass
class GraphReport:
    """Aggregate outcome of one graph's analysis chain.

    Stages that could not run record a reason in :attr:`skipped`
    (e.g. performance stages of a parametric graph analyzed without
    bindings) or :attr:`errors` (stage raised).
    """

    graph: AnyGraph
    name: str
    bindings: dict
    consistent: bool = False
    #: symbolic repetition vector, rendered (``{"B": "2*p"}``)
    repetition_symbolic: dict[str, str] = field(default_factory=dict)
    #: concrete repetition vector under ``bindings`` (when evaluable)
    repetition: dict[str, int] | None = None
    live: bool | None = None
    #: rate safety (TPDF graphs only; None for plain CSDF)
    safe: bool | None = None
    bounded: bool | None = None
    #: maximum cycle ratio — the steady-state period bound
    mcr: float | None = None
    #: per-channel buffer peaks of a buffer-minimizing iteration
    buffers: dict[str, int] | None = None
    #: timed self-timed execution (period, throughput, peaks)
    timed: TimedResult | None = None
    #: stage -> reason for stages that did not run
    skipped: dict[str, str] = field(default_factory=dict)
    #: stage -> error message for stages that raised
    errors: dict[str, str] = field(default_factory=dict)
    #: wall-clock cost of this report, seconds
    elapsed: float = 0.0

    @property
    def total_buffer(self) -> int | None:
        return None if self.buffers is None else sum(self.buffers.values())

    @property
    def period(self) -> float | None:
        return None if self.timed is None else self.timed.iteration_period

    @property
    def throughput(self) -> float | None:
        return None if self.timed is None else self.timed.throughput

    def verdict_reasons(self) -> list[str]:
        """Why the graph is not provably bounded (empty when it is)."""
        reasons = []
        if not self.consistent:
            reasons.append("rate inconsistent: "
                           + self.errors.get("consistency", "no non-trivial solution"))
        if self.safe is False:
            reasons.append("rate safety violated")
        if self.live is False:
            reasons.append("not live")
        if "liveness" in self.errors:
            reasons.append(f"liveness analysis failed: {self.errors['liveness']}")
        return reasons

    def summary(self) -> str:
        """Multi-line human-readable digest (exactly what the CLI
        ``analyze`` subcommand prints per graph)."""
        lines = [f"graph: {self.name}"]
        verdict = (
            "bounded (consistent, rate safe, live)"
            if self.bounded
            else "NOT provably bounded: " + "; ".join(self.verdict_reasons())
        )
        lines.append(f"verdict: {verdict}")
        if self.consistent:
            lines.append("repetition vector:")
            q = self.repetition or self.repetition_symbolic
            for actor, count in q.items():
                lines.append(f"  q[{actor}] = {count}")
        if self.safe is not None:
            lines.append(f"rate safety: {'safe' if self.safe else 'violated'}")
        elif "liveness" in self.errors:
            lines.append("rate safety: unknown (analysis failed)")
        if self.live is not None:
            lines.append(f"liveness: {'live' if self.live else 'DEADLOCK'}")
        elif not self.consistent:
            lines.append("liveness: skipped (inconsistent)")
        if self.mcr is not None:
            lines.append(f"max cycle ratio (period bound): {self.mcr:.4f}")
        if self.timed is not None:
            lines.append(f"self-timed steady period:       {self.period:.4f}")
            lines.append(f"throughput:                     {self.throughput:.4f} iterations/time")
        if self.buffers is not None:
            lines.append(f"min single-core buffer total:   {self.total_buffer}")
        for stage, reason in self.skipped.items():
            lines.append(f"({stage} skipped: {reason})")
        for stage, message in self.errors.items():
            if stage != "consistency":
                lines.append(f"({stage} FAILED: {message})")
        return "\n".join(lines)


def _csdf_view(graph: AnyGraph) -> CSDFGraph:
    return graph.as_csdf() if isinstance(graph, TPDFGraph) else graph


def _is_concrete(csdf: CSDFGraph, bindings: Mapping | None) -> bool:
    return not (csdf.parameters() - set(bindings or {}))


def analyze(
    graph: AnyGraph,
    bindings: Mapping | None = None,
    *,
    iterations: int = 4,
    with_liveness: bool = True,
    with_mcr: bool = True,
    with_buffers: bool = True,
    with_throughput: bool = True,
) -> GraphReport:
    """Run the full analysis chain over one graph.

    Accepts TPDF and plain CSDF graphs.  Performance stages (MCR,
    buffers, self-timed throughput) need a concrete valuation; on a
    parametric graph without (complete) ``bindings`` they are recorded
    as skipped instead of raising.  All intermediates are memoized on
    the graph, so re-analyzing (or analyzing per-stage elsewhere) costs
    nothing extra.
    """
    start = time.perf_counter()
    report = GraphReport(graph=graph, name=graph.name, bindings=dict(bindings or {}))
    csdf = _csdf_view(graph)

    # -- consistency + repetition vector -------------------------------
    from .csdf.analysis import concrete_repetition_vector, repetition_vector

    try:
        q_sym = repetition_vector(csdf)
        report.consistent = True
        report.repetition_symbolic = {name: str(poly) for name, poly in q_sym.items()}
    except _STAGE_ERRORS as exc:
        report.errors["consistency"] = str(exc)
        report.elapsed = time.perf_counter() - start
        return report

    concrete = _is_concrete(csdf, bindings)
    if concrete:
        try:
            report.repetition = concrete_repetition_vector(csdf, bindings)
        except _STAGE_ERRORS as exc:
            # Consistent but not evaluable at this valuation (e.g. a
            # fractional repetition count): report and stop the
            # concrete stages.
            report.errors["repetition"] = str(exc)
            concrete = False

    # -- rate safety + liveness ----------------------------------------
    if with_liveness:
        try:
            if isinstance(graph, TPDFGraph):
                # The full Theorem 2 chain (consistency is a cache hit).
                from .tpdf.boundedness import check_boundedness

                verdict = check_boundedness(graph)
                report.safe = verdict.safety.safe
                report.live = verdict.liveness.live
                report.bounded = verdict.bounded
            elif concrete:
                from .csdf.schedule import is_live

                report.live = is_live(csdf, bindings)
            else:
                report.skipped["liveness"] = "parametric CSDF graph: pass bindings"
        except _STAGE_ERRORS as exc:
            report.errors["liveness"] = str(exc)
    if "liveness" in report.errors:
        # Boundedness was never established — don't report it proven.
        report.bounded = False
    elif report.bounded is None:
        report.bounded = report.consistent and (report.live is not False)

    # -- performance stages (need a concrete valuation) -----------------
    unbound = sorted(csdf.parameters() - set(bindings or {}))
    reason = f"parametric (unbound: {', '.join(unbound)})" if unbound else None
    for stage, enabled in (
        ("mcr", with_mcr), ("buffers", with_buffers), ("throughput", with_throughput),
    ):
        if enabled and not concrete:
            report.skipped[stage] = reason or "repetition vector not concrete"
    if concrete and report.live is not False:
        if with_mcr:
            try:
                report.mcr = max_cycle_ratio(csdf, bindings)
            except _STAGE_ERRORS as exc:
                report.errors["mcr"] = str(exc)
        if with_buffers:
            try:
                _, peaks = minimal_buffer_schedule(csdf, bindings)
                report.buffers = dict(peaks)
            except _STAGE_ERRORS as exc:
                report.errors["buffers"] = str(exc)
        if with_throughput:
            try:
                report.timed = self_timed_execution(csdf, bindings, iterations=iterations)
            except _STAGE_ERRORS as exc:
                report.errors["throughput"] = str(exc)
    elif concrete and report.live is False:
        for stage in ("mcr", "buffers", "throughput"):
            report.skipped.setdefault(stage, "graph deadlocks")

    report.elapsed = time.perf_counter() - start
    return report


def analyze_batch(items: Iterable[BatchItem], **options) -> list[GraphReport]:
    """Analyze many graphs (or (graph, bindings) pairs) in one call.

    Options are forwarded to :func:`analyze`.  Analyses of the same
    graph object under different bindings share every binding-independent
    intermediate (symbolic repetition vector, consistency verdict) and
    all binding-keyed caches (HSDF expansion, MCR) via the per-graph
    cache, which is what makes parameter sweeps cheap.
    """
    reports = []
    for item in items:
        if isinstance(item, tuple):
            graph, bindings = item
        else:
            graph, bindings = item, None
        reports.append(analyze(graph, bindings, **options))
    return reports
