"""Abstract many-core platform model.

The paper targets the Kalray MPPA-256 (16 compute clusters of 16
processing elements, NoC-connected) programmed through the Sigma-C
canonical-period scheduler.  We model the scheduling-relevant
structure: a set of processing elements grouped into clusters, with a
cheap intra-cluster and a more expensive inter-cluster message
latency.  Absolute numbers are model time units, not silicon
nanoseconds — the reproduction claims *shape*, not cycle accuracy
(see DESIGN.md, substitutions).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ProcessingElement:
    """One core of the platform."""

    index: int
    cluster: int

    def __str__(self) -> str:
        return f"PE{self.index}(c{self.cluster})"


class Platform:
    """A clustered many-core machine.

    Parameters
    ----------
    name:
        Display name.
    clusters, cores_per_cluster:
        Grid shape; total PEs = product.
    intra_latency, inter_latency:
        Message-passing latency between two PEs of the same / of
        different clusters, in model time units.  Same-PE communication
        is free (shared local memory).
    """

    def __init__(
        self,
        name: str,
        clusters: int,
        cores_per_cluster: int,
        intra_latency: float = 1.0,
        inter_latency: float = 8.0,
    ):
        if clusters < 1 or cores_per_cluster < 1:
            raise ValueError("platform needs at least one cluster and one core")
        if intra_latency < 0 or inter_latency < 0:
            raise ValueError("latencies must be non-negative")
        self.name = name
        self.clusters = clusters
        self.cores_per_cluster = cores_per_cluster
        self.intra_latency = float(intra_latency)
        self.inter_latency = float(inter_latency)
        self.pes: tuple[ProcessingElement, ...] = tuple(
            ProcessingElement(index=c * cores_per_cluster + k, cluster=c)
            for c in range(clusters)
            for k in range(cores_per_cluster)
        )

    @property
    def n_cores(self) -> int:
        return len(self.pes)

    def pe(self, index: int) -> ProcessingElement:
        return self.pes[index]

    def message_latency(self, src: ProcessingElement, dst: ProcessingElement) -> float:
        """Latency for a token produced on ``src`` to be visible on ``dst``."""
        if src.index == dst.index:
            return 0.0
        if src.cluster == dst.cluster:
            return self.intra_latency
        return self.inter_latency

    def __repr__(self) -> str:
        return (
            f"Platform({self.name!r}, {self.clusters}x{self.cores_per_cluster} PEs, "
            f"intra={self.intra_latency}, inter={self.inter_latency})"
        )


def mppa256(intra_latency: float = 1.0, inter_latency: float = 8.0) -> Platform:
    """The MPPA-256 shape used throughout the paper's evaluation."""
    return Platform("MPPA-256", clusters=16, cores_per_cluster=16,
                    intra_latency=intra_latency, inter_latency=inter_latency)


def single_cluster(cores: int = 16, intra_latency: float = 1.0) -> Platform:
    """A single compute cluster (the unit the canonical period maps to)."""
    return Platform(f"cluster{cores}", clusters=1, cores_per_cluster=cores,
                    intra_latency=intra_latency, inter_latency=intra_latency)
