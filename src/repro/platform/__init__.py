"""Many-core platform models (MPPA-256-like clustered machines)."""

from .machine import Platform, ProcessingElement, mppa256, single_cluster

__all__ = ["Platform", "ProcessingElement", "mppa256", "single_cluster"]
