"""Synchronous python client of the resident analysis service.

``ServiceClient`` speaks the service's JSON wire form over a plain
:class:`http.client.HTTPConnection` (stdlib only) and converts both
directions back to library types: graphs go out through
:func:`repro.io.graph_to_payload`, reports come back through
:func:`repro.io.report_from_dict` /
:func:`repro.io.parametric_report_from_dict`, and error envelopes are
re-raised as the original exception type via
:func:`repro.service.wire.error_from_dict` — a caller catches
:class:`~repro.errors.DeadlockError` from the service exactly as it
would from a direct :func:`repro.analysis.analyze` call.

>>> client = ServiceClient(handle.url)          # doctest: +SKIP
>>> report = client.analyze(graph, {"p": 2})    # doctest: +SKIP
>>> report.fingerprint() == analyze(graph, {"p": 2}).fingerprint()
...                                             # doctest: +SKIP
True
"""

from __future__ import annotations

import http.client
import json
from typing import Mapping
from urllib.parse import urlsplit

from ..io import (graph_to_payload, parametric_report_from_dict,
                  report_from_dict, trace_from_dict)
from .wire import error_from_dict


def _graph_arg(graph) -> dict:
    """Accept a live graph or an already-encoded payload dict."""
    if isinstance(graph, dict):
        return graph
    return graph_to_payload(graph)


class ServiceSession:
    """Client handle on one server-side edit-replay session."""

    def __init__(self, client: "ServiceClient", sid: str, graph_key: str,
                 report):
        self.client = client
        self.sid = sid
        self.graph_key = graph_key
        #: Baseline report from opening the session.
        self.report = report

    def edits(self, edits: list, *, preflight: bool = False,
              test: Mapping | None = None):
        """Apply an edit script and return the re-analyzed report.

        With ``preflight=True`` the server dry-runs the script on a
        scratch copy first and raises
        :class:`~repro.errors.DiagnosticsError` (with the structured
        findings attached) instead of replaying a script that would
        end in a statically-broken state — the session graph stays at
        its pre-script state in that case."""
        body: dict = {"edits": list(edits)}
        if preflight:
            body["preflight"] = True
        if test:
            body["test"] = dict(test)
        data = self.client._request("POST", f"/session/{self.sid}/edits",
                                    body)
        self.graph_key = data["graph_key"]
        self.report = report_from_dict(data["report"])
        return self.report

    def close(self) -> None:
        self.client._request("DELETE", f"/session/{self.sid}")

    def __enter__(self) -> "ServiceSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ServiceClient:
    """Blocking HTTP client for :class:`~repro.service.app.AnalysisService`."""

    def __init__(self, base_url: str, timeout: float = 60.0):
        parts = urlsplit(base_url)
        if parts.scheme not in ("http", ""):
            raise ValueError(f"only http:// service URLs are supported, "
                             f"got {base_url!r}")
        netloc = parts.netloc or parts.path
        self.host, _, port = netloc.partition(":")
        self.port = int(port) if port else 80
        self.timeout = timeout

    # -- transport -------------------------------------------------------
    def _request(self, method: str, path: str,
                 body: Mapping | None = None) -> dict:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            payload = json.dumps(body).encode("utf-8") if body is not None \
                else b""
            conn.request(method, path, body=payload,
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            data = json.loads(response.read().decode("utf-8"))
        finally:
            conn.close()
        if response.status >= 400:
            raise error_from_dict(data.get("error", {}),
                                  status=response.status)
        return data

    # -- endpoints -------------------------------------------------------
    def health(self) -> dict:
        return self._request("GET", "/health")

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def analyze(self, graph, bindings: Mapping | None = None, *,
                no_cache: bool = False, test: Mapping | None = None,
                **options):
        """Remote :func:`repro.analysis.analyze`; returns a
        :class:`~repro.analysis.GraphReport` (``graph`` detached)."""
        body: dict = {"graph": _graph_arg(graph)}
        if bindings:
            body["bindings"] = dict(bindings)
        if options:
            body["options"] = options
        if no_cache:
            body["no_cache"] = True
        if test:
            body["test"] = dict(test)
        data = self._request("POST", "/analyze", body)
        return report_from_dict(data["report"])

    def simulate(self, graph, bindings: Mapping | None = None, *,
                 until: float | None = None,
                 limits: Mapping | None = None,
                 max_firings: int | None = None,
                 cores: int | None = None,
                 capacities: Mapping | None = None,
                 ready_core: str = "arrays",
                 no_cache: bool = False):
        """Remote :func:`repro.analysis.simulate`; returns the timing
        view of the :class:`~repro.sim.Trace` (firings, modes,
        discards, peaks — no token payloads).  A deadlock raises
        :class:`~repro.errors.DeadlockError` with its blocked set,
        exactly as the direct call would."""
        options: dict = {}
        if until is not None:
            options["until"] = until
        if limits is not None:
            options["limits"] = dict(limits)
        if max_firings is not None:
            options["max_firings"] = max_firings
        if cores is not None:
            options["cores"] = cores
        if capacities is not None:
            options["capacities"] = dict(capacities)
        if ready_core != "arrays":
            options["ready_core"] = ready_core
        body: dict = {"graph": _graph_arg(graph), "options": options}
        if bindings:
            body["bindings"] = dict(bindings)
        if no_cache:
            body["no_cache"] = True
        data = self._request("POST", "/simulate", body)
        return trace_from_dict(data["trace"])

    def lint(self, graph, bindings: Mapping | None = None, *,
             no_cache: bool = False) -> list:
        """Remote :func:`repro.diagnostics.run_diagnostics`; returns
        the list of :class:`~repro.diagnostics.Diagnostic` records."""
        from ..diagnostics import Diagnostic

        body: dict = {"graph": _graph_arg(graph)}
        if bindings:
            body["bindings"] = dict(bindings)
        if no_cache:
            body["no_cache"] = True
        data = self._request("POST", "/lint", body)
        return [Diagnostic.from_dict(row) for row in data["diagnostics"]]

    def analyze_parametric(self, graph, domain: Mapping, *,
                           max_boxes: int = 20_000,
                           no_cache: bool = False):
        """Remote :func:`repro.analysis.analyze_parametric`."""
        body = {"graph": _graph_arg(graph),
                "domain": {name: list(bounds)
                           for name, bounds in dict(domain).items()},
                "max_boxes": max_boxes}
        if no_cache:
            body["no_cache"] = True
        data = self._request("POST", "/analyze_parametric", body)
        return parametric_report_from_dict(data["report"])

    def batch(self, items, *, no_cache: bool = False, **options) -> list:
        """Submit many analyses in one request.

        ``items`` is a list of graphs or ``(graph, bindings)`` pairs.
        Returns a list of :class:`~repro.analysis.GraphReport`; a
        failed item's slot holds the reconstructed exception instead.
        """
        graphs: list = []
        wire_items = []
        for item in items:
            graph, bindings = item if isinstance(item, tuple) else (item, None)
            graphs.append(_graph_arg(graph))
            entry: dict = {"graph": len(graphs) - 1}
            if bindings:
                entry["bindings"] = dict(bindings)
            wire_items.append(entry)
        body: dict = {"graphs": graphs, "items": wire_items}
        if options:
            body["options"] = options
        if no_cache:
            body["no_cache"] = True
        data = self._request("POST", "/batch", body)
        results = []
        for entry in data["results"]:
            if "error" in entry:
                results.append(error_from_dict(entry["error"],
                                               status=entry.get("status")))
            else:
                results.append(report_from_dict(entry["report"]))
        return results

    def session(self, graph, bindings: Mapping | None = None,
                **options) -> ServiceSession:
        """Open an edit-replay session (server-side
        :class:`~repro.analysis.EditSession`)."""
        body: dict = {"graph": _graph_arg(graph)}
        if bindings:
            body["bindings"] = dict(bindings)
        if options:
            body["options"] = options
        data = self._request("POST", "/session", body)
        return ServiceSession(self, data["session"], data["graph_key"],
                              report_from_dict(data["report"]))
