"""repro.service — the resident analysis service.

A long-running front door over :mod:`repro.analysis`: a persistent
worker pool that keeps decoded graphs and analysis caches warm across
requests, a content-fingerprint-keyed result cache with single-flight
deduplication, and a stdlib-asyncio HTTP API speaking the
:mod:`repro.io` payload and report codecs.  Start one with
``python -m repro serve`` or, in-process,
:func:`~repro.service.app.serve_in_thread`; talk to it with
:class:`~repro.service.client.ServiceClient`.
"""

from .app import AnalysisService, ServiceThread, serve_in_thread
from .client import ServiceClient, ServiceSession
from .pool import WorkerPool
from .rescache import ResultCache
from .wire import (BadRequest, ServiceError, SessionLost, SessionNotFound,
                   WorkerCrashError, error_from_dict, error_status,
                   error_to_dict)

__all__ = [
    "AnalysisService",
    "BadRequest",
    "ResultCache",
    "ServiceClient",
    "ServiceError",
    "ServiceSession",
    "ServiceThread",
    "SessionLost",
    "SessionNotFound",
    "WorkerCrashError",
    "WorkerPool",
    "error_from_dict",
    "error_status",
    "error_to_dict",
    "serve_in_thread",
]
