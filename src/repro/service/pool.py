"""The persistent analysis worker pool.

The one-shot ``analyze_batch(jobs=)`` path pays a full
``ProcessPoolExecutor`` spin-up and a per-batch graph decode on every
call — the wrong shape for sustained service traffic.  This pool
starts its workers **once** and keeps them resident: each worker holds
a bounded decode cache of warm graphs keyed by payload content
fingerprint (:class:`repro.cache.ContentStore`), so a graph that was
ever analyzed stays decoded, its :mod:`repro.cache` state — balance
solutions, HSDF structure, per-SCC MCR memos, SoA execution
templates — warm across requests, and a repeat request (different
bindings, more iterations, a parametric domain) pays only the delta.

Failure model
-------------
Workers are separate processes; a crash (OOM kill, segfault in a
native extension, an explicit SIGKILL in the fault-injection suite)
surfaces parent-side as EOF on the worker's pipe.  The pool then
replaces the worker and, for stateless requests, retries on the
replacement up to the configured attempt bound — analysis is
deterministic and side-effect free, so a retry is always safe.  A
request that crashes every worker it touches fails cleanly with
:class:`~repro.service.wire.WorkerCrashError` (HTTP 503), never a
hang.  Session requests are *sticky* (the worker holds the session's
mutable graph), so a crash there is not retriable: the pool raises
:class:`~repro.service.wire.SessionLost` and the app reports 410 for
that session from then on.  Idle crashed workers are replaced by
:meth:`WorkerPool.check_health` (called by ``GET /health`` and the
app's periodic health task).

The wire between app and worker is a ``multiprocessing.Pipe``
carrying plain dict requests and pickled replies (``GraphReport`` with
the graph detached — the codec-shaped payload the parallel batch
service already ships).  Blocking pipe I/O is pushed onto a small
thread executor so the asyncio front door never blocks.
"""

from __future__ import annotations

import asyncio
import itertools
import multiprocessing
import os
import signal
import time
from concurrent.futures import ThreadPoolExecutor

from .wire import SessionLost, WorkerCrashError, error_to_dict

#: Decoded-graph LRU entries each worker keeps resident.
DEFAULT_DECODE_LIMIT = 32


class _WorkerDied(Exception):
    """Internal: the pipe to the worker broke mid-roundtrip."""


# ---------------------------------------------------------------------------
# Worker process side
# ---------------------------------------------------------------------------

def _apply_test_hooks(request: dict) -> None:
    """Fault-injection hooks, honored only when the pool was built with
    ``test_hooks=True`` (the fault suite): ``sleep_ms`` widens the
    in-flight window so the test can SIGKILL the worker mid-request;
    ``crash`` SIGKILLs the worker the moment the request arrives (the
    retry-bound test: every attempt kills its worker)."""
    hooks = request.get("hooks") or {}
    if hooks.get("sleep_ms"):
        time.sleep(float(hooks["sleep_ms"]) / 1000.0)
    if hooks.get("crash"):
        os.kill(os.getpid(), signal.SIGKILL)


def _worker_main(conn, decode_limit: int, test_hooks: bool) -> None:
    """Worker entry point: serve requests until shutdown or EOF.

    Resident state: ``graphs`` (content-fingerprint-keyed LRU of
    decoded, cache-warm graphs shared by all stateless requests) and
    ``sessions`` (edit sessions, each owning a *private* decoded graph
    because sessions mutate it)."""
    import dataclasses

    from ..analysis import (EditSession, analyze, analyze_parametric,
                            simulate, warm_graph)
    from ..cache import ContentStore
    from ..io import graph_from_payload, graph_to_payload, payload_fingerprint
    from .wire import SessionNotFound

    graphs = ContentStore(decode_limit)
    sessions: dict = {}

    def resident_graph(request):
        key = request["graph_key"]
        graph = graphs.get(key)
        if graph is None:
            graph = warm_graph(graph_from_payload(request["payload"]))
            graphs.put(key, graph)
        return graph

    def detached(report):
        return dataclasses.replace(report, graph=None)

    while True:
        try:
            request = conn.recv()
        except (EOFError, OSError):
            break
        op = request.get("op")
        if op == "shutdown":
            break
        try:
            if test_hooks:
                _apply_test_hooks(request)
            if op == "ping":
                reply = {"ok": True, "pid": os.getpid(),
                         "resident_graphs": len(graphs),
                         "sessions": len(sessions)}
            elif op == "analyze":
                report = analyze(resident_graph(request),
                                 request.get("bindings"),
                                 **request.get("options", {}))
                reply = {"ok": True, "report": detached(report)}
            elif op == "parametric":
                report = analyze_parametric(
                    resident_graph(request), request["domain"],
                    max_boxes=request.get("max_boxes", 20_000),
                )
                reply = {"ok": True, "parametric": report}
            elif op == "lint":
                # Static diagnostics are pure (no mutation, no cache
                # population), so the shared resident graph is safe.
                from ..diagnostics import run_diagnostics

                findings = run_diagnostics(resident_graph(request),
                                           bindings=request.get("bindings"))
                reply = {"ok": True,
                         "diagnostics": [d.to_dict() for d in findings]}
            elif op == "simulate":
                # Timed TPDF simulation over the resident (shared,
                # cache-warm) graph: the Simulator keeps all run state
                # private, so the decoded instance is never mutated.
                trace = simulate(resident_graph(request),
                                 request.get("bindings"),
                                 **request.get("options", {}))
                reply = {"ok": True, "trace": trace}
            elif op == "session_open":
                # Sessions edit their graph in place: decode a private
                # instance, never the shared resident one.
                graph = graph_from_payload(request["payload"])
                session = EditSession(graph, request.get("bindings"),
                                      **request.get("options", {}))
                report = session.analyze()
                sessions[request["session"]] = session
                reply = {"ok": True, "report": detached(report),
                         "graph_key": request["graph_key"]}
            elif op == "session_edits":
                session = sessions.get(request["session"])
                if session is None:
                    raise SessionNotFound(
                        f"unknown session {request['session']!r} on this worker"
                    )
                if request.get("preflight"):
                    # Raises DiagnosticsError (→ 422 envelope with the
                    # findings) before any edit touches the session.
                    session.preflight(request.get("edits", []))
                for edit in request.get("edits", []):
                    session.apply(edit)
                report = session.analyze()
                new_key = payload_fingerprint(graph_to_payload(session.graph))
                reply = {"ok": True, "report": detached(report),
                         "graph_key": new_key}
            elif op == "session_close":
                sessions.pop(request.get("session"), None)
                reply = {"ok": True}
            else:
                raise ValueError(f"unknown worker op {op!r}")
        except Exception as exc:  # deterministic failures ride the envelope
            reply = {"ok": False, "error": error_to_dict(exc)}
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break


# ---------------------------------------------------------------------------
# Parent (asyncio) side
# ---------------------------------------------------------------------------

def _roundtrip(conn, request: dict) -> dict:
    """Blocking send/recv, run on the pool's thread executor.  A dead
    worker surfaces as EOF/broken pipe on either leg."""
    try:
        conn.send(request)
        return conn.recv()
    except (EOFError, BrokenPipeError, ConnectionResetError, OSError) as exc:
        raise _WorkerDied(str(exc)) from exc


class WorkerHandle:
    """One pool slot's live worker: process, pipe, and an asyncio lock
    serializing requests on the (single-lane) pipe."""

    __slots__ = ("slot", "generation", "proc", "conn", "lock", "dead")

    def __init__(self, slot: int, generation: int, proc, conn):
        self.slot = slot
        self.generation = generation
        self.proc = proc
        self.conn = conn
        self.lock = asyncio.Lock()
        self.dead = False

    @property
    def pid(self) -> int | None:
        return self.proc.pid

    def describe(self) -> dict:
        return {
            "slot": self.slot,
            "generation": self.generation,
            "pid": self.pid,
            "alive": (not self.dead) and self.proc.is_alive(),
        }


class WorkerPool:
    """Managed persistent pool of analysis workers (see module docs)."""

    def __init__(self, size: int = 2, *,
                 decode_limit: int = DEFAULT_DECODE_LIMIT,
                 max_attempts: int = 3,
                 test_hooks: bool = False,
                 start_method: str | None = None):
        if size < 1:
            raise ValueError(f"pool size must be >= 1, got {size}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.size = size
        self.decode_limit = decode_limit
        self.max_attempts = max_attempts
        self.test_hooks = test_hooks
        if start_method is None:
            # fork keeps worker start cheap (no re-import of numpy and
            # the analysis stack); fall back where it does not exist.
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(start_method)
        self._generations = itertools.count(1)
        self._rr = itertools.count()
        self.workers: list[WorkerHandle] = []
        self._executor: ThreadPoolExecutor | None = None
        self.stats = {"requests": 0, "worker_restarts": 0, "retries": 0}

    # -- lifecycle -------------------------------------------------------
    async def start(self) -> None:
        if self._executor is not None:
            raise RuntimeError("pool already started")
        # One thread per worker (each can be mid-roundtrip) plus one
        # spare for health/shutdown traffic.
        self._executor = ThreadPoolExecutor(
            max_workers=self.size + 1, thread_name_prefix="repro-pool"
        )
        self.workers = [self._spawn(slot) for slot in range(self.size)]

    def _spawn(self, slot: int) -> WorkerHandle:
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self.decode_limit, self.test_hooks),
            name=f"repro-analysis-worker-{slot}",
            daemon=True,
        )
        proc.start()
        child_conn.close()  # parent keeps one end; worker death -> EOF
        return WorkerHandle(slot, next(self._generations), proc, parent_conn)

    async def stop(self) -> None:
        if self._executor is None:
            return
        for handle in self.workers:
            handle.dead = True
            try:
                handle.conn.send({"op": "shutdown"})
            except (BrokenPipeError, OSError):
                pass
        deadline = time.monotonic() + 2.0
        for handle in self.workers:
            handle.proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if handle.proc.is_alive():
                handle.proc.kill()
            handle.conn.close()
        self.workers = []
        self._executor.shutdown(wait=False)
        self._executor = None

    # -- crash handling --------------------------------------------------
    def _replace(self, handle: WorkerHandle) -> None:
        """Replace a dead worker in its slot (idempotent per handle).
        The old pipe is left to the garbage collector on purpose: a
        roundtrip thread may still be blocked on it, and process death
        already guarantees it EOFs."""
        if handle.dead:
            return
        handle.dead = True
        if handle.proc.is_alive():
            handle.proc.kill()
        self.workers[handle.slot] = self._spawn(handle.slot)
        self.stats["worker_restarts"] += 1

    async def check_health(self) -> list[dict]:
        """Replace any crashed idle worker; report every slot's state."""
        for handle in list(self.workers):
            if handle.dead or not handle.proc.is_alive():
                self._replace(handle)
        return [handle.describe() for handle in self.workers]

    # -- dispatch --------------------------------------------------------
    def pick(self) -> WorkerHandle:
        """Choose a worker for a new request or session: the first
        idle one at or after the round-robin cursor, else whoever the
        cursor points at (requests queue on its lock)."""
        start = next(self._rr)
        candidates = [self.workers[(start + i) % self.size]
                      for i in range(self.size)]
        for handle in candidates:
            if not handle.dead and not handle.lock.locked():
                return handle
        return candidates[0]

    async def submit(self, request: dict, *,
                     handle: WorkerHandle | None = None) -> dict:
        """Send one request; return the worker's reply dict.

        Stateless requests (no ``handle``) are retried on a fresh
        worker after a crash, up to ``max_attempts`` total executions.
        Sticky requests raise :class:`SessionLost` on the first crash
        — the state they addressed died with the worker.
        """
        if self._executor is None:
            raise RuntimeError("pool is not running")
        sticky = handle is not None
        loop = asyncio.get_running_loop()
        attempts = 0
        while True:
            target = handle if sticky else self.pick()
            if target.dead:
                if sticky:
                    raise SessionLost(
                        "the worker holding this session crashed; "
                        "reopen the session"
                    )
                continue  # pick() again: the slot was already replaced
            async with target.lock:
                if target.dead:
                    continue
                attempts += 1
                self.stats["requests"] += 1
                try:
                    return await loop.run_in_executor(
                        self._executor, _roundtrip, target.conn, request
                    )
                except _WorkerDied:
                    self._replace(target)
            # (lock released: the dead handle's lock is obsolete)
            if sticky:
                raise SessionLost(
                    "the worker holding this session crashed; "
                    "reopen the session"
                )
            if attempts >= self.max_attempts:
                raise WorkerCrashError(
                    f"request failed after {attempts} attempts: the "
                    f"analysis worker crashed on every try",
                    attempts=attempts,
                )
            self.stats["retries"] += 1
