"""Wire schemas of the resident analysis service: the structured error
envelope and its two-way mapping to exception types.

Every non-2xx response of the service carries a JSON body of the form
``{"error": {"type": ..., "message": ..., "blocked": [...]}}`` —
``type`` is the exception class name, ``blocked`` rides along only for
:class:`~repro.errors.DeadlockError` and ``diagnostics`` (the
structured findings) only for
:class:`~repro.errors.DiagnosticsError`.  :func:`error_to_dict` builds
the envelope server-side; :func:`error_from_dict` reconstructs the
*same exception type* client-side for every library error and the
whitelisted builtins, so a caller of
:class:`~repro.service.client.ServiceClient` catches exactly what a
direct :func:`repro.analysis.analyze` call would raise.  Unknown
types degrade to :class:`ServiceError` (which also carries the HTTP
status).

Report payloads themselves are encoded by the :mod:`repro.io` report
codecs (``report_to_dict`` and friends) — this module only owns the
error surface and the service-specific exception types.
"""

from __future__ import annotations

import builtins
from typing import Mapping

from .. import errors as _errors
from ..errors import ReproError


class ServiceError(ReproError):
    """Transport-level or unmapped service failure (client side).

    Carries the wire ``type`` name and, when raised from an HTTP
    response, the status code."""

    def __init__(self, message: str, *, type_name: str = "ServiceError",
                 status: int | None = None):
        super().__init__(message)
        self.type_name = type_name
        self.status = status


class BadRequest(ReproError):
    """The request document is malformed (not JSON, missing fields,
    unknown options...) — mapped to HTTP 400."""


class SessionNotFound(ReproError):
    """The referenced session id does not exist — HTTP 404."""


class SessionLost(ReproError):
    """The worker holding this session's resident state crashed; the
    session cannot be resumed and must be reopened — HTTP 410."""


class WorkerCrashError(ReproError):
    """A request kept crashing its worker and the retry bound was
    exhausted — HTTP 503.  ``attempts`` counts executions tried."""

    def __init__(self, message: str, attempts: int = 1):
        super().__init__(message)
        self.attempts = attempts


#: Exception class -> HTTP status.  First match in order wins (checked
#: with isinstance, so subclasses inherit their base's status unless
#: listed earlier).
_STATUS_TABLE: tuple[tuple[type, int], ...] = (
    (BadRequest, 400),
    (SessionNotFound, 404),
    (SessionLost, 410),
    (WorkerCrashError, 503),
    (_errors.GraphConstructionError, 400),
    (TypeError, 400),
    (ValueError, 400),
    (KeyError, 400),
    (ReproError, 422),
)


def error_status(exc: BaseException) -> int:
    """The HTTP status an exception maps to (500 when unmapped)."""
    for cls, status in _STATUS_TABLE:
        if isinstance(exc, cls):
            return status
    return 500


def error_to_dict(exc: BaseException) -> dict:
    """The structured error envelope body for ``exc``."""
    entry: dict = {"type": type(exc).__name__, "message": str(exc)}
    blocked = getattr(exc, "blocked", None)
    if blocked:
        entry["blocked"] = [str(name) for name in blocked]
    attempts = getattr(exc, "attempts", None)
    if attempts is not None:
        entry["attempts"] = int(attempts)
    diagnostics = getattr(exc, "diagnostics", None)
    if diagnostics:
        entry["diagnostics"] = [d.to_dict() for d in diagnostics]
    return entry


#: Builtin exception types the client is allowed to reconstruct.
_BUILTIN_WHITELIST = frozenset({"TypeError", "ValueError", "KeyError"})

#: Service-local exception types (not in repro.errors).
_SERVICE_TYPES = {
    cls.__name__: cls
    for cls in (BadRequest, SessionNotFound, SessionLost, WorkerCrashError)
}


def error_from_dict(data: Mapping, status: int | None = None) -> BaseException:
    """Reconstruct the exception an error envelope describes.

    Library errors (:mod:`repro.errors`), service errors and the
    whitelisted builtins come back as their original type —
    :class:`~repro.errors.DeadlockError` with its blocked set,
    :class:`WorkerCrashError` with its attempt count.  Anything else
    becomes a :class:`ServiceError` carrying the wire type name.
    """
    type_name = str(data.get("type", "ServiceError"))
    message = str(data.get("message", ""))
    cls = getattr(_errors, type_name, None)
    if not (isinstance(cls, type) and issubclass(cls, ReproError)):
        cls = _SERVICE_TYPES.get(type_name)
    if cls is None and type_name in _BUILTIN_WHITELIST:
        cls = getattr(builtins, type_name)
    if cls is None:
        return ServiceError(message, type_name=type_name, status=status)
    if cls is _errors.DeadlockError:
        return cls(message, blocked=list(data.get("blocked", [])))
    if cls is _errors.DiagnosticsError:
        from ..diagnostics import Diagnostic

        return cls(message, diagnostics=[
            Diagnostic.from_dict(row) for row in data.get("diagnostics", ())
        ])
    if cls is WorkerCrashError:
        return cls(message, attempts=int(data.get("attempts", 1)))
    if cls is KeyError and message.startswith("'") and message.endswith("'"):
        # KeyError str() quotes its argument; unquote so the round
        # trip does not stack quotes.
        return cls(message[1:-1])
    return cls(message)
