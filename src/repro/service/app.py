"""The resident analysis service: asyncio HTTP front door.

``AnalysisService`` glues the three resident pieces together:

* a :class:`~repro.service.pool.WorkerPool` of persistent analysis
  workers (decoded graphs and :mod:`repro.cache` state stay warm
  across requests, crashed workers are replaced automatically),
* a :class:`~repro.service.rescache.ResultCache` keyed by content
  fingerprint with single-flight dedup (identical concurrent
  submissions compute once; all callers get bit-for-bit the same
  response), and
* a thin framework-free HTTP/1.1 router on ``asyncio.start_server``
  (stdlib only — no web framework in the dependency footprint).

Endpoints (all bodies JSON, all graphs in the :mod:`repro.io` payload
codec)::

    GET    /health                     worker slots; replaces dead ones
    GET    /stats                      cache + pool + session counters
    POST   /analyze                    {"graph", "bindings", "options"}
    POST   /analyze_parametric         {"graph", "domain", "max_boxes"}
    POST   /simulate                   {"graph", "bindings", "options"}
    POST   /lint                       {"graph", "bindings"} -> diagnostics
    POST   /batch                      {"graphs", "items", "options"}
    POST   /session                    open an edit-replay session
    POST   /session/<sid>/edits        apply edits + re-analyze (warm);
                                       {"preflight": true} dry-runs the
                                       script first and 422s with the
                                       diagnostics if it would end broken
    DELETE /session/<sid>              close a session

Errors come back as the structured envelope of
:mod:`repro.service.wire` with the status :func:`~repro.service.wire.error_status`
assigns, so a deadlock surfaces as 422 + its blocked-actor set and a
malformed request as 400 — the client reconstructs the original
exception type either way.

For tests and docs, :func:`serve_in_thread` runs a service on an
ephemeral port inside a daemon thread and tears it down on exit.
"""

from __future__ import annotations

import asyncio
import contextlib
import itertools
import json
import re
import threading

from ..cache import bindings_key, domain_key
from ..io import (parametric_report_to_dict, payload_fingerprint,
                  report_to_dict, trace_to_dict)
from .pool import DEFAULT_DECODE_LIMIT, WorkerPool
from .rescache import ResultCache
from .wire import (BadRequest, SessionNotFound, error_from_dict, error_status,
                   error_to_dict)

#: ``analyze`` options accepted over the wire.  ``reuse_from`` is
#: deliberately absent (it names a process-local object; the service's
#: equivalent is a session), as is anything that is not a plain value.
_ANALYZE_OPTIONS = frozenset({
    "iterations", "with_liveness", "with_mcr", "with_buffers",
    "with_throughput", "backend", "parametric_domain",
})

#: ``simulate`` options accepted over the wire.  ``record_values`` is
#: deliberately absent: token payloads are arbitrary Python objects
#: with no JSON form (the timing view ships; see
#: :func:`repro.io.trace_to_dict`).
_SIMULATE_OPTIONS = frozenset({
    "until", "limits", "max_firings", "cores", "capacities", "ready_core",
})


def _parse_simulate_options(data) -> dict:
    if data is None:
        return {}
    if not isinstance(data, dict):
        raise BadRequest(f"options must be an object, got {type(data).__name__}")
    unknown = set(data) - _SIMULATE_OPTIONS
    if unknown:
        raise BadRequest(f"unknown simulate options: {sorted(unknown)}")
    options = dict(data)
    if (options.get("until") is None and options.get("limits") is None
            and options.get("max_firings") is None):
        raise BadRequest(
            "simulate needs a stop condition in options: "
            "'until', 'limits' or 'max_firings'"
        )
    return options


def _simulate_options_key(options: dict) -> tuple:
    items = []
    for name in sorted(options):
        value = options[name]
        if isinstance(value, dict):
            value = tuple(sorted(value.items()))
        items.append((name, value))
    return tuple(items)


def _parse_options(data) -> dict:
    """Validate/normalize the wire ``options`` object for ``analyze``."""
    if data is None:
        return {}
    if not isinstance(data, dict):
        raise BadRequest(f"options must be an object, got {type(data).__name__}")
    unknown = set(data) - _ANALYZE_OPTIONS
    if unknown:
        raise BadRequest(f"unknown analyze options: {sorted(unknown)}")
    options = dict(data)
    domain = options.get("parametric_domain")
    if isinstance(domain, dict):
        # JSON has no tuples; bounds arrive as 2-lists.
        options["parametric_domain"] = {
            name: tuple(bounds) for name, bounds in domain.items()
        }
    return options


def _options_key(options: dict) -> tuple:
    """Hashable cache-key view of a normalized options dict."""
    items = []
    for name in sorted(options):
        value = options[name]
        if name == "parametric_domain":
            value = domain_key(value)
        items.append((name, value))
    return tuple(items)


class _Session:
    """Parent-side record of one edit-replay session: which worker
    holds it (sticky — the worker owns the mutable graph) and the
    latest content key its graph resolves to."""

    __slots__ = ("sid", "handle", "graph_key", "lock")

    def __init__(self, sid: str, handle, graph_key: str):
        self.sid = sid
        self.handle = handle
        self.graph_key = graph_key
        self.lock = asyncio.Lock()


class AnalysisService:
    """A resident analysis service instance (see module docs)."""

    def __init__(self, *, workers: int = 2, cache_limit: int = 256,
                 decode_limit: int = DEFAULT_DECODE_LIMIT,
                 max_attempts: int = 3, test_hooks: bool = False,
                 health_interval: float = 2.0,
                 start_method: str | None = None):
        self.pool = WorkerPool(workers, decode_limit=decode_limit,
                               max_attempts=max_attempts,
                               test_hooks=test_hooks,
                               start_method=start_method)
        self.cache = ResultCache(cache_limit)
        self.test_hooks = test_hooks
        self.health_interval = health_interval
        self.sessions: dict[str, _Session] = {}
        self._session_ids = itertools.count(1)
        self._server: asyncio.AbstractServer | None = None
        self._health_task: asyncio.Task | None = None
        self._client_tasks: set[asyncio.Task] = set()
        self.requests = 0
        self.host: str | None = None
        self.port: int | None = None

    # -- lifecycle -------------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        await self.pool.start()
        self._server = await asyncio.start_server(self._serve_client,
                                                  host, port)
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        if self.health_interval:
            self._health_task = asyncio.ensure_future(self._health_loop())

    async def stop(self) -> None:
        if self._health_task is not None:
            self._health_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._health_task
            self._health_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # closing the listener does not close accepted keep-alive
        # connections; reap them so the loop shuts down clean
        for task in list(self._client_tasks):
            task.cancel()
        if self._client_tasks:
            await asyncio.gather(*self._client_tasks,
                                 return_exceptions=True)
        await self.pool.stop()
        self.sessions.clear()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def _health_loop(self) -> None:
        while True:
            await asyncio.sleep(self.health_interval)
            await self.pool.check_health()

    # -- HTTP plumbing ---------------------------------------------------
    async def _serve_client(self, reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._client_tasks.add(task)
            task.add_done_callback(self._client_tasks.discard)
        try:
            while True:
                request_line = await reader.readline()
                if not request_line:
                    break
                try:
                    method, path, _version = (
                        request_line.decode("latin-1").split()
                    )
                except ValueError:
                    await self._respond(writer, 400, {
                        "error": {"type": "BadRequest",
                                  "message": "malformed request line"}})
                    break
                headers = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = line.decode("latin-1").partition(":")
                    headers[name.strip().lower()] = value.strip()
                length = int(headers.get("content-length", 0) or 0)
                body = await reader.readexactly(length) if length else b""
                status, payload = await self._dispatch(method, path, body)
                keep_alive = headers.get("connection", "").lower() != "close"
                await self._respond(writer, status, payload,
                                    keep_alive=keep_alive)
                if not keep_alive:
                    break
        except (asyncio.IncompleteReadError, ConnectionResetError,
                asyncio.CancelledError):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       payload: dict, *, keep_alive: bool = True) -> None:
        body = json.dumps(payload).encode("utf-8")
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  405: "Method Not Allowed", 410: "Gone",
                  422: "Unprocessable Entity",
                  503: "Service Unavailable"}.get(status, "Error")
        head = (f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
                f"\r\n").encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    _ROUTES = (
        (re.compile(r"^/health$"), {"GET": "_handle_health"}),
        (re.compile(r"^/stats$"), {"GET": "_handle_stats"}),
        (re.compile(r"^/analyze$"), {"POST": "_handle_analyze"}),
        (re.compile(r"^/analyze_parametric$"),
         {"POST": "_handle_parametric"}),
        (re.compile(r"^/simulate$"), {"POST": "_handle_simulate"}),
        (re.compile(r"^/lint$"), {"POST": "_handle_lint"}),
        (re.compile(r"^/batch$"), {"POST": "_handle_batch"}),
        (re.compile(r"^/session$"), {"POST": "_handle_session_open"}),
        (re.compile(r"^/session/(?P<sid>[\w-]+)/edits$"),
         {"POST": "_handle_session_edits"}),
        (re.compile(r"^/session/(?P<sid>[\w-]+)$"),
         {"DELETE": "_handle_session_close"}),
    )

    async def _dispatch(self, method: str, path: str,
                        body: bytes) -> tuple[int, dict]:
        self.requests += 1
        for pattern, methods in self._ROUTES:
            match = pattern.match(path)
            if match is None:
                continue
            name = methods.get(method)
            if name is None:
                return 405, {"error": {
                    "type": "BadRequest",
                    "message": f"{method} not allowed on {path}"}}
            try:
                if body:
                    try:
                        data = json.loads(body)
                    except json.JSONDecodeError as exc:
                        raise BadRequest(f"request body is not JSON: {exc}")
                else:
                    data = {}
                return 200, await getattr(self, name)(data,
                                                      **match.groupdict())
            except Exception as exc:
                return error_status(exc), {"error": error_to_dict(exc)}
        return 404, {"error": {"type": "BadRequest",
                               "message": f"no such endpoint: {path}"}}

    # -- request helpers -------------------------------------------------
    def _graph_payload(self, data, field: str = "graph"):
        payload = data.get(field)
        if not isinstance(payload, dict):
            raise BadRequest(f"request is missing a {field!r} payload object")
        return payload, payload_fingerprint(payload)

    def _hooks(self, data):
        hooks = data.get("test")
        if hooks and not self.test_hooks:
            raise BadRequest("test hooks are disabled on this service")
        return hooks or None

    async def _call_worker(self, request: dict, *, handle=None) -> dict:
        """Submit to the pool; re-raise worker-reported errors as the
        exception they encode (so dispatch maps them back to the same
        envelope + status)."""
        reply = await self.pool.submit(request, handle=handle)
        if not reply.get("ok"):
            raise error_from_dict(reply["error"])
        return reply

    # -- endpoint handlers -----------------------------------------------
    async def _handle_health(self, data) -> dict:
        workers = await self.pool.check_health()
        return {"status": "ok", "workers": workers,
                "worker_restarts": self.pool.stats["worker_restarts"]}

    async def _handle_stats(self, data) -> dict:
        return {
            "requests": self.requests,
            "cache": {**self.cache.stats, "entries": len(self.cache),
                      "evictions": self.cache.evictions},
            "pool": dict(self.pool.stats),
            "sessions": len(self.sessions),
            "workers": await self._worker_stats(),
        }

    async def _worker_stats(self) -> list:
        """Per-worker resident-state rows for ``GET /stats``: each live
        worker reports its decode-cache occupancy (``resident_graphs``)
        and session count over a ``ping``; a dead worker's slot is
        reported rather than hidden (the health loop replaces it)."""

        async def one(handle) -> dict:
            row = {"slot": handle.slot, "pid": handle.pid,
                   "alive": (not handle.dead) and handle.proc.is_alive()}
            if not row["alive"]:
                return row
            try:
                reply = await self.pool.submit({"op": "ping"}, handle=handle)
                row["resident_graphs"] = reply.get("resident_graphs", 0)
                row["sessions"] = reply.get("sessions", 0)
            except Exception:
                row["alive"] = False
            return row

        return list(await asyncio.gather(
            *(one(handle) for handle in list(self.pool.workers))
        ))

    async def _analyze_cached(self, data) -> dict:
        payload, graph_key = self._graph_payload(data)
        bindings = data.get("bindings")
        options = _parse_options(data.get("options"))
        hooks = self._hooks(data)
        key = ("analyze", graph_key, bindings_key(bindings),
               _options_key(options))
        request = {"op": "analyze", "graph_key": graph_key,
                   "payload": payload, "bindings": bindings,
                   "options": options, "hooks": hooks}

        async def compute() -> dict:
            reply = await self._call_worker(request)
            return {"graph_key": graph_key,
                    "report": report_to_dict(reply["report"])}

        if data.get("no_cache") or hooks:
            # Hooked requests must actually reach a worker (the fault
            # suite depends on it); no_cache measures resident-warm
            # latency without the front cache.
            return await compute()
        return await self.cache.get_or_compute(key, compute)

    async def _handle_analyze(self, data) -> dict:
        return await self._analyze_cached(data)

    async def _handle_parametric(self, data) -> dict:
        payload, graph_key = self._graph_payload(data)
        domain = data.get("domain")
        if not isinstance(domain, dict) or not domain:
            raise BadRequest("analyze_parametric needs a non-empty "
                             "'domain' object of name -> [lo, hi]")
        domain = {name: tuple(bounds) for name, bounds in domain.items()}
        max_boxes = int(data.get("max_boxes", 20_000))
        hooks = self._hooks(data)
        key = ("parametric", graph_key, domain_key(domain), max_boxes)
        request = {"op": "parametric", "graph_key": graph_key,
                   "payload": payload, "domain": domain,
                   "max_boxes": max_boxes, "hooks": hooks}

        async def compute() -> dict:
            reply = await self._call_worker(request)
            return {"graph_key": graph_key,
                    "report": parametric_report_to_dict(reply["parametric"])}

        if data.get("no_cache") or hooks:
            return await compute()
        return await self.cache.get_or_compute(key, compute)

    async def _handle_simulate(self, data) -> dict:
        """``POST /simulate``: timed TPDF simulation on a resident
        worker (the schedule-plane/value-plane core by default; the
        ``ready_core`` option selects another engine — traces are
        bit-identical, so the cache key may include it safely)."""
        payload, graph_key = self._graph_payload(data)
        bindings = data.get("bindings")
        options = _parse_simulate_options(data.get("options"))
        hooks = self._hooks(data)
        key = ("simulate", graph_key, bindings_key(bindings),
               _simulate_options_key(options))
        request = {"op": "simulate", "graph_key": graph_key,
                   "payload": payload, "bindings": bindings,
                   "options": options, "hooks": hooks}

        async def compute() -> dict:
            reply = await self._call_worker(request)
            return {"graph_key": graph_key,
                    "trace": trace_to_dict(reply["trace"])}

        if data.get("no_cache") or hooks:
            return await compute()
        return await self.cache.get_or_compute(key, compute)

    async def _handle_lint(self, data) -> dict:
        """``POST /lint``: static diagnostics on a resident worker.

        Diagnostics are pure and deterministic in the graph content +
        bindings, so the result rides the fingerprint-keyed cache like
        any analysis."""
        payload, graph_key = self._graph_payload(data)
        bindings = data.get("bindings")
        hooks = self._hooks(data)
        key = ("lint", graph_key, bindings_key(bindings))
        request = {"op": "lint", "graph_key": graph_key,
                   "payload": payload, "bindings": bindings, "hooks": hooks}

        async def compute() -> dict:
            reply = await self._call_worker(request)
            return {"graph_key": graph_key,
                    "diagnostics": reply["diagnostics"]}

        if data.get("no_cache") or hooks:
            return await compute()
        return await self.cache.get_or_compute(key, compute)

    async def _handle_batch(self, data) -> dict:
        graphs = data.get("graphs", [])
        items = data.get("items")
        if not isinstance(items, list) or not items:
            raise BadRequest("batch needs a non-empty 'items' list")
        shared_options = data.get("options")

        def item_request(item) -> dict:
            if not isinstance(item, dict):
                raise BadRequest("each batch item must be an object")
            graph = item.get("graph")
            if isinstance(graph, int):
                try:
                    graph = graphs[graph]
                except IndexError:
                    raise BadRequest(
                        f"batch item references graph #{item['graph']} "
                        f"but only {len(graphs)} graphs were supplied"
                    ) from None
            sub = {"graph": graph, "bindings": item.get("bindings"),
                   "options": item.get("options", shared_options)}
            if data.get("no_cache"):
                sub["no_cache"] = True
            return sub

        async def run_item(item) -> dict:
            try:
                return await self._analyze_cached(item_request(item))
            except Exception as exc:
                return {"error": error_to_dict(exc),
                        "status": error_status(exc)}

        results = await asyncio.gather(*(run_item(item) for item in items))
        return {"results": list(results)}

    async def _handle_session_open(self, data) -> dict:
        payload, graph_key = self._graph_payload(data)
        bindings = data.get("bindings")
        options = _parse_options(data.get("options"))
        hooks = self._hooks(data)
        sid = f"s{next(self._session_ids):04d}"
        handle = self.pool.pick()
        reply = await self._call_worker(
            {"op": "session_open", "session": sid, "graph_key": graph_key,
             "payload": payload, "bindings": bindings, "options": options,
             "hooks": hooks},
            handle=handle,
        )
        self.sessions[sid] = _Session(sid, handle, graph_key)
        return {"session": sid, "graph_key": graph_key,
                "report": report_to_dict(reply["report"])}

    def _session(self, sid: str) -> _Session:
        session = self.sessions.get(sid)
        if session is None:
            raise SessionNotFound(f"no such session: {sid!r}")
        return session

    async def _handle_session_edits(self, data, sid: str) -> dict:
        session = self._session(sid)
        edits = data.get("edits")
        if not isinstance(edits, list):
            raise BadRequest("session edits need an 'edits' list")
        hooks = self._hooks(data)
        async with session.lock:
            try:
                reply = await self._call_worker(
                    {"op": "session_edits", "session": sid, "edits": edits,
                     "preflight": bool(data.get("preflight")),
                     "hooks": hooks},
                    handle=session.handle,
                )
            except Exception:
                if session.handle.dead:
                    # The resident state died with the worker.
                    self.sessions.pop(sid, None)
                raise
            session.graph_key = reply["graph_key"]
        # The edited graph has a new content key, so any cached result
        # for the old key is simply unreachable — staleness cannot
        # occur; a later /analyze of the edited graph misses and
        # computes fresh (warm == cold, bit for bit).
        return {"session": sid, "graph_key": reply["graph_key"],
                "report": report_to_dict(reply["report"])}

    async def _handle_session_close(self, data, sid: str) -> dict:
        session = self._session(sid)
        self.sessions.pop(sid, None)
        if not session.handle.dead:
            with contextlib.suppress(Exception):
                await self._call_worker(
                    {"op": "session_close", "session": sid},
                    handle=session.handle,
                )
        return {"session": sid, "closed": True}


# ---------------------------------------------------------------------------
# Thread-hosted serving (tests, docs, quick experiments)
# ---------------------------------------------------------------------------

class ServiceThread:
    """A service running inside a daemon thread's event loop."""

    def __init__(self, service: AnalysisService, loop: asyncio.AbstractEventLoop,
                 thread: threading.Thread):
        self.service = service
        self.loop = loop
        self.thread = thread

    @property
    def url(self) -> str:
        return self.service.url

    def call(self, coro):
        """Run a coroutine on the service loop, synchronously."""
        return asyncio.run_coroutine_threadsafe(coro, self.loop).result(30)

    def stop(self) -> None:
        if not self.thread.is_alive():
            return
        self.call(self.service.stop())
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10)


@contextlib.contextmanager
def serve_in_thread(host: str = "127.0.0.1", port: int = 0, **kwargs):
    """Run an :class:`AnalysisService` on a background thread.

    Yields a :class:`ServiceThread` whose ``url`` points at the live
    service (ephemeral port by default); the service and its workers
    are torn down when the block exits.
    """
    service = AnalysisService(**kwargs)
    loop = asyncio.new_event_loop()
    started = threading.Event()

    def run() -> None:
        asyncio.set_event_loop(loop)
        loop.call_soon(started.set)
        loop.run_forever()

    thread = threading.Thread(target=run, name="repro-service", daemon=True)
    thread.start()
    started.wait(10)
    handle = ServiceThread(service, loop, thread)
    handle.call(service.start(host, port))
    try:
        yield handle
    finally:
        handle.stop()
