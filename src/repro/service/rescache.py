"""Fingerprint-keyed result cache with single-flight deduplication.

The service keys every stateless result by content: the graph's
payload fingerprint (sha256 of its canonical JSON payload) plus the
binding and option keys the analysis cache already uses.  Content
addressing makes staleness structurally impossible — an edited graph
has a different payload, hence a different key — so entries never need
invalidating, only bounding (LRU via :class:`repro.cache.ContentStore`).

Single-flight: when N identical requests arrive concurrently, the
first computes and the other N-1 await the same :class:`asyncio.Future`,
so the pool executes the analysis exactly once and every caller gets
the *same* cached response object — bit-for-bit identical reports by
construction.  Nothing is cached on failure; errors propagate to every
coalesced waiter and the next submission retries fresh.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, Hashable

from ..cache import ContentStore


class ResultCache:
    """Bounded async result cache with per-key in-flight coalescing."""

    def __init__(self, limit: int = 256):
        self._entries = ContentStore(limit)
        self._inflight: dict[Hashable, asyncio.Future] = {}
        self.stats = {"hits": 0, "misses": 0, "coalesced": 0, "computed": 0}

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def evictions(self) -> int:
        return self._entries.evictions

    def peek(self, key: Hashable):
        """The cached value for ``key`` (no compute, no coalescing)."""
        return self._entries.get(key)

    def put(self, key: Hashable, value) -> None:
        """Insert a value computed out of band (the session-edit path:
        the edited graph's fresh result is valid for its new content
        key, so plain ``/analyze`` of the edited graph hits warm)."""
        self._entries.put(key, value)

    async def get_or_compute(self, key: Hashable,
                             compute: Callable[[], Awaitable]):
        """Return the cached value for ``key``, computing it at most
        once across all concurrent callers."""
        cached = self._entries.get(key)
        if cached is not None:
            self.stats["hits"] += 1
            return cached
        inflight = self._inflight.get(key)
        if inflight is not None:
            self.stats["coalesced"] += 1
            # shield: one waiter being cancelled must not cancel the
            # computation out from under the others.
            return await asyncio.shield(inflight)
        self.stats["misses"] += 1
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        try:
            value = await compute()
        except BaseException as exc:
            future.set_exception(exc)
            # Waiters (if any) re-raise it; stop the "exception never
            # retrieved" warning when there were none.
            future.exception()
            raise
        else:
            self.stats["computed"] += 1
            self._entries.put(key, value)
            future.set_result(value)
            return value
        finally:
            self._inflight.pop(key, None)
