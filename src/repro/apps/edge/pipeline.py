"""The edge-detection TPDF application (Fig. 6 of the paper).

Graph::

    IRead -> IDuplicate -> {QMask, Sobel, Prewitt, Canny} -> Trans -> IWrite
                                                    clock(500ms) -^

``IRead`` reads images and ``IDuplicate`` copies each one to all
detector branches; every detector computes the same frame in parallel;
the ``Trans`` transaction kernel receives a control token from a clock
every ``period`` milliseconds and forwards the *best finished* result
according to the paper's quality order Canny > Prewitt > Sobel >
Quick Mask; unfinished branches' tokens are discarded when they
arrive.  This "best result by the deadline" behaviour is exactly what
plain CSDF cannot express (Sec. IV-A).

Model time is milliseconds throughout (clock period 500 = the paper's
500 ms deadline).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ...sim import Simulator, Trace
from ...tpdf import TPDFGraph, clock, transaction
from .filters import FILTERS, detect, quality_rank
from .timing_model import (
    ESTIMATED_TIMES_MS,
    PAPER_TIMES_MS,
    model_time_ms,
    time_fn,
)

#: The methods of the paper's Fig. 6 table, cheapest first.
DEFAULT_METHODS = ("quickmask", "sobel", "prewitt", "canny")


def build_edge_graph(
    images: Sequence[np.ndarray],
    period: float = 500.0,
    methods: Sequence[str] = DEFAULT_METHODS,
    compute_edges: bool = False,
    read_time: float = 0.0,
) -> tuple[TPDFGraph, list]:
    """Build the Fig. 6 application graph.

    Parameters
    ----------
    images:
        Frames for ``IRead`` (one token each).
    period:
        Clock period in model milliseconds (the paper's deadline: 500).
    methods:
        Detector subset to instantiate (must be known filters).
    compute_edges:
        Run the real numpy filters inside the simulation (slower); when
        off, detectors emit ``(method, frame_index)`` tags, which is
        enough for the deadline/selection behaviour.
    read_time:
        Model time of one ``IRead`` firing.

    Returns ``(graph, results)`` where ``results`` collects what
    ``IWrite`` receives: ``(method, payload)`` tuples in arrival order.
    """
    unknown = [m for m in methods if m not in FILTERS]
    if unknown:
        raise KeyError(f"unknown edge detectors: {unknown}")
    graph = TPDFGraph("edge_detection")
    frames = list(images)

    def read_fn(n: int, _consumed: dict):
        return frames[n % len(frames)]

    iread = graph.add_kernel("IRead", exec_time=read_time, function=read_fn)
    iread.add_output("out", 1)

    dup = graph.add_kernel(
        "IDuplicate", exec_time=0.0,
        function=lambda _n, consumed: consumed["in"][0],  # copy to all branches
    )
    dup.add_input("in", 1)
    for method in methods:
        dup.add_output(f"to_{method}", 1)
    graph.connect("IRead.out", "IDuplicate.in", name="e_read")

    def detector_fn(method: str):
        def run(n: int, consumed: dict):
            image = consumed["in"][0]
            if compute_edges and isinstance(image, np.ndarray):
                return (method, detect(method, image))
            return (method, n)
        return run

    for method in methods:
        kernel = graph.add_kernel(method, function=detector_fn(method))
        kernel.meta["time_fn"] = time_fn(method)
        kernel.add_input("in", 1)
        kernel.add_output("out", 1)
        graph.connect(f"IDuplicate.to_{method}", f"{method}.in", name=f"e_dup_{method}")

    trans = transaction(
        graph,
        "Trans",
        inputs=len(methods),
        input_names=[f"from_{m}" for m in methods],
        priorities=[quality_rank(m) for m in methods],
        action="priority_deadline",
        exec_time=0.0,
    )
    for method in methods:
        graph.connect(f"{method}.out", f"Trans.from_{method}", name=f"e_{method}_trans")

    timer = clock(graph, "Clock", period=period)
    graph.connect("Clock.tick", "Trans.ctrl", name="e_clock")

    results: list = []

    def write_fn(_n: int, consumed: dict):
        results.append(consumed["in"][0])
        return None

    iwrite = graph.add_kernel("IWrite", exec_time=0.0, function=write_fn)
    iwrite.add_input("in", 1)
    graph.connect("Trans.out", "IWrite.in", name="e_write")
    _ = trans, timer
    return graph, results


@dataclass
class EdgeExperiment:
    """Outcome of one deadline-driven edge-detection run."""

    chosen: list[tuple[str, object]]
    trace: Trace
    period: float
    methods: tuple[str, ...]
    #: completion model-time of the first firing of each detector
    first_completion: dict[str, float] = field(default_factory=dict)

    def chosen_methods(self) -> list[str]:
        return [method for method, _ in self.chosen]

    def frame_latencies(self) -> list[float]:
        """Per-frame end-to-end latency: IRead start to IWrite end.

        Streaming view for multi-frame runs; with a clock period T and
        instantaneous read, every frame's result leaves at the first
        tick after its detectors finished, so latencies are multiples
        of T here.
        """
        reads = self.trace.firings_of("IRead")
        writes = self.trace.firings_of("IWrite")
        return [
            write.end - read.start
            for read, write in zip(reads, writes)
        ]

    def latency_jitter(self) -> float:
        """Max - min frame latency (0 for perfectly periodic output)."""
        latencies = self.frame_latencies()
        if len(latencies) < 2:
            return 0.0
        return max(latencies) - min(latencies)

    def finished_by_deadline(self, deadline: float | None = None) -> list[str]:
        """Methods whose first frame completed by the (first) deadline."""
        limit = deadline if deadline is not None else self.period
        return [
            method
            for method in self.methods
            if self.first_completion.get(method, float("inf")) <= limit
        ]


def run_edge_experiment(
    images: Sequence[np.ndarray],
    period: float = 500.0,
    methods: Sequence[str] = DEFAULT_METHODS,
    frames: int = 1,
    compute_edges: bool = False,
    horizon: float | None = None,
) -> EdgeExperiment:
    """Simulate the Fig. 6 application for ``frames`` input images."""
    graph, results = build_edge_graph(
        images, period=period, methods=methods, compute_edges=compute_edges
    )
    sim = Simulator(graph, record_values=True)
    if horizon is None:
        anchors = {**ESTIMATED_TIMES_MS, **PAPER_TIMES_MS}
        worst = max(anchors[m] for m in methods)
        horizon = (frames + 1) * max(period, worst) + period
    trace = sim.run(until=horizon, limits={"IRead": frames})
    first_completion = {
        method: records[0].end
        for method in methods
        if (records := trace.firings_of(method))
    }
    return EdgeExperiment(
        chosen=list(results),
        trace=trace,
        period=period,
        methods=tuple(methods),
        first_completion=first_completion,
    )


def fig6_table(size: int = 1024) -> list[tuple[str, float, float]]:
    """The Fig. 6 timing table: (method, paper ms, model ms at size^2)."""
    return [
        (method, PAPER_TIMES_MS[method], model_time_ms(method, size, size))
        for method in DEFAULT_METHODS
    ]
