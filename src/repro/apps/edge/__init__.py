"""Edge-detection case study (Sec. IV-A / Fig. 6 of the paper)."""

from .filters import (
    FILTERS,
    QUALITY_ORDER,
    canny,
    detect,
    kirsch,
    prewitt,
    quality_rank,
    quick_mask,
    sobel,
)
from .images import edge_density, flat, step_edge, synthetic_scene
from .timing_model import PAPER_TIMES_MS, model_time_ms, time_fn, wallclock_ratios
from .pipeline import (
    DEFAULT_METHODS,
    EdgeExperiment,
    build_edge_graph,
    fig6_table,
    run_edge_experiment,
)

__all__ = [
    "FILTERS",
    "QUALITY_ORDER",
    "quick_mask",
    "sobel",
    "prewitt",
    "kirsch",
    "canny",
    "detect",
    "quality_rank",
    "synthetic_scene",
    "step_edge",
    "flat",
    "edge_density",
    "PAPER_TIMES_MS",
    "model_time_ms",
    "time_fn",
    "wallclock_ratios",
    "DEFAULT_METHODS",
    "build_edge_graph",
    "run_edge_experiment",
    "EdgeExperiment",
    "fig6_table",
]
