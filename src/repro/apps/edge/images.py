"""Synthetic test images for the edge-detection case study.

The paper measured a 1024x1024 photograph on an Intel i3; we have no
image corpus offline, so we synthesize deterministic grayscale scenes
with known edge structure (rectangles, disks, diagonal bars, smooth
gradients, optional Gaussian noise).  Known geometry lets tests assert
*where* edges should be found, which a photograph would not.
"""

from __future__ import annotations

import numpy as np


def synthetic_scene(
    size: int = 256,
    noise: float = 0.0,
    seed: int = 0,
) -> np.ndarray:
    """A deterministic grayscale scene with rich edge content.

    Contains a bright rectangle, a disk, a diagonal band and a smooth
    background gradient, plus optional additive Gaussian noise with
    standard deviation ``noise`` (in intensity units, image range is
    [0, 255]).
    """
    if size < 16:
        raise ValueError("scene size must be at least 16")
    rng = np.random.default_rng(seed)
    yy, xx = np.mgrid[0:size, 0:size].astype(np.float64)
    image = 40.0 + 40.0 * xx / size  # smooth gradient background

    # Rectangle.
    r0, r1 = size // 8, size // 8 + size // 4
    c0, c1 = size // 6, size // 6 + size // 3
    image[r0:r1, c0:c1] = 200.0

    # Disk.
    cy, cx, radius = 2 * size // 3, 2 * size // 3, size // 6
    disk = (yy - cy) ** 2 + (xx - cx) ** 2 <= radius**2
    image[disk] = 120.0

    # Diagonal band.
    band = np.abs((yy - xx)) < size // 32
    image[band] = 230.0

    if noise > 0.0:
        image = image + rng.normal(0.0, noise, image.shape)
    return np.clip(image, 0.0, 255.0)


def step_edge(size: int = 64, position: float = 0.5) -> np.ndarray:
    """A vertical step edge (the simplest ground-truth test case)."""
    image = np.zeros((size, size), dtype=np.float64)
    image[:, int(size * position):] = 255.0
    return image


def flat(size: int = 64, level: float = 128.0) -> np.ndarray:
    """A constant image: no detector should report edges."""
    return np.full((size, size), float(level))


def edge_density(edge_map: np.ndarray, threshold: float = 0.25) -> float:
    """Fraction of pixels marked as edges (drives the data-dependent
    Canny cost model)."""
    return float((edge_map >= threshold).mean())
