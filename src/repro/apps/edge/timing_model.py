"""Calibrated execution-time model for the edge detectors (Fig. 6).

The paper measured, on an Intel Core i3 @ 2.53 GHz with a 1024x1024
image::

    Quick Mask   200 ms
    Sobel        473 ms
    Prewitt      522 ms
    Canny       1040 ms

We cannot re-run their machine, so the simulator uses a *cost model*
calibrated to that row: per-method cost is linear in the pixel count
with the paper's 1024^2 values as anchors.  Canny additionally scales
mildly with edge content (the paper: "the execution time depends on
the input image"), so identical image sizes can still miss or make a
deadline depending on content.

The model is deliberately separate from the real numpy filters in
:mod:`repro.apps.edge.filters`: the functional pipeline runs real
filters, while model *time* follows the paper's measurements.  The
Fig. 6 bench also reports our filters' wall-clock ratios next to the
paper's, as evidence the ordering is intrinsic.
"""

from __future__ import annotations

import time

import numpy as np

from .filters import FILTERS, detect
from .images import edge_density

#: Paper's measured milliseconds for a 1024x1024 image (Fig. 6 table).
PAPER_TIMES_MS = {
    "quickmask": 200.0,
    "sobel": 473.0,
    "prewitt": 522.0,
    "canny": 1040.0,
}

#: Methods the paper implements but does not time (Kirsch): estimated
#: from operation counts — 8 compass convolutions + max-reduction vs
#: Sobel's 2 convolutions + hypot, i.e. about 4x Sobel's kernel work.
ESTIMATED_TIMES_MS = {
    "kirsch": 4.0 * 473.0,
}

#: The paper's reference pixel count.
REFERENCE_PIXELS = 1024 * 1024

#: Canny content sensitivity: cost multiplier spans [1 - S, 1 + S] as
#: edge density goes from 0 to 20% of pixels.
CANNY_CONTENT_SPAN = 0.15


def model_time_ms(method: str, height: int, width: int,
                  density: float | None = None) -> float:
    """Model execution time in milliseconds.

    ``density`` (fraction of edge pixels) only affects Canny; ``None``
    uses the neutral multiplier 1.0.
    """
    anchors = {**ESTIMATED_TIMES_MS, **PAPER_TIMES_MS}
    if method not in anchors:
        raise KeyError(f"no calibrated time for method {method!r}")
    base = anchors[method] * (height * width) / REFERENCE_PIXELS
    if method == "canny" and density is not None:
        swing = min(max(density, 0.0), 0.2) / 0.2  # clamp to [0, 1]
        base *= 1.0 - CANNY_CONTENT_SPAN + 2.0 * CANNY_CONTENT_SPAN * swing
    return base


def time_fn(method: str):
    """A ``meta['time_fn']`` hook for the simulator: duration of firing
    ``n`` given the consumed image."""

    def duration(_n: int, consumed: dict) -> float:
        images = [v for vs in consumed.values() for v in vs if isinstance(v, np.ndarray)]
        if not images:
            return {**ESTIMATED_TIMES_MS, **PAPER_TIMES_MS}[method]
        image = images[0]
        density = None
        if method == "canny":
            # Cheap proxy for content: gradient activity.
            gy, gx = np.gradient(image)
            density = edge_density(np.hypot(gx, gy) / 255.0, threshold=0.1)
        return model_time_ms(method, image.shape[0], image.shape[1], density)

    return duration


def wallclock_ratios(image, repeats: int = 1) -> dict[str, float]:
    """Measured wall-clock time of *our* filters, normalized to Quick
    Mask = 1.0 — printed by the Fig. 6 bench next to the paper's
    ratios."""
    timings: dict[str, float] = {}
    for method in FILTERS:
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            detect(method, image)
            best = min(best, time.perf_counter() - start)
        timings[method] = best
    anchor = timings["quickmask"] or 1e-9
    return {method: value / anchor for method, value in timings.items()}
