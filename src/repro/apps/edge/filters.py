"""Edge-detection filters (Sec. IV-A of the paper).

Real numpy/scipy implementations of the five detectors the case study
mentions — Quick Mask, Sobel, Prewitt, Kirsch and Canny — so the TPDF
application processes actual images and the *relative* cost ordering
(Quick Mask < Sobel < Prewitt < Canny) is intrinsic, not assumed.

All filters take a 2-D float array and return an edge map scaled to
``[0, 1]``.  Canny returns a binary map; its cost genuinely depends on
the image content (hysteresis follows edge chains), which is the
paper's motivation for deadline-driven selection.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

#: Priority order of the case study: "Canny > Prewitt > Sobel > Quick Mask".
QUALITY_ORDER = ("quickmask", "sobel", "prewitt", "canny")

_QUICK_MASK = np.array(
    [[-1.0, 0.0, -1.0],
     [0.0, 4.0, 0.0],
     [-1.0, 0.0, -1.0]]
)

_SOBEL_X = np.array(
    [[-1.0, 0.0, 1.0],
     [-2.0, 0.0, 2.0],
     [-1.0, 0.0, 1.0]]
)

_PREWITT_X = np.array(
    [[-1.0, 0.0, 1.0],
     [-1.0, 0.0, 1.0],
     [-1.0, 0.0, 1.0]]
)

_KIRSCH_BASE = np.array(
    [[5.0, 5.0, 5.0],
     [-3.0, 0.0, -3.0],
     [-3.0, -3.0, -3.0]]
)


def _normalize(edges: np.ndarray) -> np.ndarray:
    peak = float(edges.max())
    if peak <= 0.0:
        return np.zeros_like(edges)
    return edges / peak


def _as_float(image: np.ndarray) -> np.ndarray:
    if image.ndim != 2:
        raise ValueError(f"expected a 2-D grayscale image, got shape {image.shape}")
    return np.asarray(image, dtype=np.float64)


def quick_mask(image: np.ndarray) -> np.ndarray:
    """Single-mask detector — the cheapest method of the case study."""
    image = _as_float(image)
    edges = np.abs(ndimage.convolve(image, _QUICK_MASK, mode="nearest"))
    return _normalize(edges)


def _gradient_pair(image: np.ndarray, kernel_x: np.ndarray) -> np.ndarray:
    gx = ndimage.convolve(image, kernel_x, mode="nearest")
    gy = ndimage.convolve(image, kernel_x.T, mode="nearest")
    return np.hypot(gx, gy)


def sobel(image: np.ndarray) -> np.ndarray:
    """Sobel gradient-magnitude detector."""
    return _normalize(_gradient_pair(_as_float(image), _SOBEL_X))


def prewitt(image: np.ndarray) -> np.ndarray:
    """Prewitt gradient-magnitude detector."""
    return _normalize(_gradient_pair(_as_float(image), _PREWITT_X))


def kirsch(image: np.ndarray) -> np.ndarray:
    """Kirsch compass detector: max response over 8 rotated masks."""
    image = _as_float(image)
    mask = _KIRSCH_BASE
    best = np.zeros_like(image)
    for _ in range(8):
        response = np.abs(ndimage.convolve(image, mask, mode="nearest"))
        np.maximum(best, response, out=best)
        mask = _rotate45(mask)
    return _normalize(best)


def _rotate45(mask: np.ndarray) -> np.ndarray:
    """Rotate the outer ring of a 3x3 mask by one position (45 deg)."""
    ring_index = [(0, 0), (0, 1), (0, 2), (1, 2), (2, 2), (2, 1), (2, 0), (1, 0)]
    ring = [mask[i, j] for i, j in ring_index]
    rotated = mask.copy()
    for (i, j), value in zip(ring_index, ring[-1:] + ring[:-1]):
        rotated[i, j] = value
    return rotated


def canny(
    image: np.ndarray,
    sigma: float = 1.4,
    low_ratio: float = 0.1,
    high_ratio: float = 0.25,
) -> np.ndarray:
    """Canny detector: blur, gradient, non-max suppression, hysteresis.

    The most expensive and highest-quality detector of the case study
    (and the only data-dependent one: hysteresis cost grows with the
    number of edge pixels).
    """
    image = _as_float(image)
    smoothed = ndimage.gaussian_filter(image, sigma=sigma, mode="nearest")
    gx = ndimage.convolve(smoothed, _SOBEL_X, mode="nearest")
    gy = ndimage.convolve(smoothed, _SOBEL_X.T, mode="nearest")
    magnitude = np.hypot(gx, gy)
    angle = np.rad2deg(np.arctan2(gy, gx)) % 180.0

    suppressed = _non_max_suppression(magnitude, angle)
    # Absolute floor: featureless images have only floating-point
    # residue (~1e-13) in the gradient; never report edges there.
    floor = 1e-6 * max(1.0, float(np.abs(image).max()))
    high = suppressed.max() * high_ratio
    if high <= floor:
        return np.zeros_like(image)
    low = high * low_ratio / high_ratio
    strong = suppressed >= high
    weak = (suppressed >= low) & ~strong

    # Hysteresis: keep weak pixels connected to strong ones.
    labels, count = ndimage.label(strong | weak, structure=np.ones((3, 3)))
    if count:
        strong_labels = np.unique(labels[strong])
        keep = np.isin(labels, strong_labels[strong_labels > 0])
    else:
        keep = strong
    return keep.astype(np.float64)


def _non_max_suppression(magnitude: np.ndarray, angle: np.ndarray) -> np.ndarray:
    """Thin gradient ridges to single-pixel width."""
    h, w = magnitude.shape
    out = np.zeros_like(magnitude)
    padded = np.pad(magnitude, 1, mode="edge")
    # Quantize angles into 4 directions and compare against the two
    # neighbours along the gradient.
    direction = ((angle + 22.5) // 45.0).astype(int) % 4
    offsets = {0: ((0, 1), (0, -1)), 1: ((-1, 1), (1, -1)),
               2: ((-1, 0), (1, 0)), 3: ((-1, -1), (1, 1))}
    for d, ((di1, dj1), (di2, dj2)) in offsets.items():
        mask = direction == d
        n1 = padded[1 + di1:h + 1 + di1, 1 + dj1:w + 1 + dj1]
        n2 = padded[1 + di2:h + 1 + di2, 1 + dj2:w + 1 + dj2]
        keep = mask & (magnitude >= n1) & (magnitude >= n2)
        out[keep] = magnitude[keep]
    return out


FILTERS = {
    "quickmask": quick_mask,
    "sobel": sobel,
    "prewitt": prewitt,
    "kirsch": kirsch,
    "canny": canny,
}


def detect(method: str, image: np.ndarray) -> np.ndarray:
    """Dispatch by method name (raises KeyError on unknown methods)."""
    return FILTERS[method](image)


def quality_rank(method: str) -> int:
    """Paper's quality ordering as an integer priority (higher = better).

    Kirsch is implemented but not ranked in the paper's Fig. 6; we slot
    it between Prewitt and Canny based on its compass-mask quality.
    """
    extended = ("quickmask", "sobel", "prewitt", "kirsch", "canny")
    return extended.index(method)
