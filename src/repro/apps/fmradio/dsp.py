"""FM radio DSP blocks (the StreamIt-style extra workload).

Sec. IV-B notes that "several StreamIt benchmarks (e.g., FM Radio)
must perform redundant calculations that are not needed with models
allowing dynamic topology changes such as TPDF".  We implement the
classic StreamIt FM radio pipeline — FM demodulation followed by a
multi-band equalizer — so the redundancy claim can be *measured*
(see :mod:`repro.apps.fmradio.pipeline`).
"""

from __future__ import annotations

import numpy as np


def fm_modulate(audio: np.ndarray, sensitivity: float = 0.8) -> np.ndarray:
    """Frequency-modulate an audio signal into a complex baseband."""
    audio = np.asarray(audio, dtype=np.float64)
    phase = 2.0 * np.pi * sensitivity * np.cumsum(audio)
    return np.exp(1j * phase)


def fm_demodulate(baseband: np.ndarray, sensitivity: float = 0.8) -> np.ndarray:
    """Polar discriminator: recover audio from complex FM baseband."""
    baseband = np.asarray(baseband, dtype=complex)
    if baseband.size < 2:
        return np.zeros(baseband.size)
    product = baseband[1:] * np.conj(baseband[:-1])
    demod = np.angle(product) / (2.0 * np.pi * sensitivity)
    return np.concatenate([[demod[0]], demod])


def lowpass_taps(cutoff: float, taps: int = 33) -> np.ndarray:
    """Windowed-sinc low-pass FIR taps (normalized cutoff in (0, 0.5))."""
    if not 0.0 < cutoff < 0.5:
        raise ValueError(f"normalized cutoff must be in (0, 0.5), got {cutoff}")
    if taps < 3 or taps % 2 == 0:
        raise ValueError("taps must be an odd integer >= 3")
    n = np.arange(taps) - (taps - 1) / 2.0
    sinc = 2.0 * cutoff * np.sinc(2.0 * cutoff * n)
    window = np.hamming(taps)
    coeffs = sinc * window
    return coeffs / coeffs.sum()


def bandpass_taps(low: float, high: float, taps: int = 33) -> np.ndarray:
    """Band-pass FIR as a difference of two low-pass filters — exactly
    how the StreamIt equalizer builds its bands."""
    if not 0.0 < low < high < 0.5:
        raise ValueError(f"need 0 < low < high < 0.5, got ({low}, {high})")
    return lowpass_taps(high, taps) - lowpass_taps(low, taps)


def fir(signal: np.ndarray, taps: np.ndarray) -> np.ndarray:
    """Causal FIR filtering (same-length output, zero initial state)."""
    return np.convolve(np.asarray(signal, dtype=np.float64), taps)[: len(signal)]


def equalizer_bands(n_bands: int, low: float = 0.01, high: float = 0.45,
                    taps: int = 33) -> list[np.ndarray]:
    """Log-spaced band-pass taps covering (low, high)."""
    if n_bands < 1:
        raise ValueError("need at least one band")
    edges = np.geomspace(low, high, n_bands + 1)
    return [bandpass_taps(lo, hi, taps) for lo, hi in zip(edges, edges[1:])]
