"""FM radio pipelines: static CSDF vs. dynamic TPDF equalizer.

Structure (per StreamIt's FMRadio benchmark)::

    SRC -> DEMOD -> SPLIT -> band_0 .. band_{B-1} -> SUM -> SNK

The *static* variant computes every equalizer band each iteration.
The *TPDF* variant makes ``SPLIT`` a select-duplicate driven by a
control actor holding the current preset, so only the active subset of
bands executes — the redundant-computation saving the paper attributes
to dynamic topology changes.  :func:`compare_redundancy` quantifies
executed firings and buffer demand for both variants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ...csdf import minimal_buffer_schedule, total_buffer_size
from ...sim import Simulator
from ...tpdf import ControlToken, Mode, TPDFGraph, restrict_to_selection, select_duplicate
from .dsp import equalizer_bands, fir, fm_demodulate

#: samples per firing of every actor (StreamIt uses fine-grained rates;
#: we batch for simulation efficiency — the *structure* is what matters).
BLOCK = 64


def build_fm_graph(
    n_bands: int = 6,
    active_bands: Sequence[int] | None = None,
    dynamic: bool = True,
    gains: Sequence[float] | None = None,
) -> TPDFGraph:
    """Build the FM radio graph.

    ``dynamic=True`` adds the preset control actor steering the
    select-duplicate; ``active_bands`` lists the enabled band indices
    (default: all).  ``dynamic=False`` produces the static variant in
    which every band always runs (control machinery absent).
    """
    active = list(range(n_bands)) if active_bands is None else sorted(active_bands)
    if not active or any(b < 0 or b >= n_bands for b in active):
        raise ValueError(f"invalid active band set {active} for {n_bands} bands")
    band_gains = list(gains) if gains is not None else [1.0] * n_bands
    taps = equalizer_bands(n_bands)

    graph = TPDFGraph("fmradio_tpdf" if dynamic else "fmradio_static")
    src = graph.add_kernel("SRC")
    src.add_output("out", BLOCK)

    demod = graph.add_kernel("DEMOD", function=_demod_fn())
    demod.add_input("in", BLOCK)
    demod.add_output("out", BLOCK)
    graph.connect("SRC.out", "DEMOD.in", name="e_src")

    band_ports = [f"band{i}" for i in range(n_bands)]
    if dynamic:
        split = select_duplicate(
            graph, "SPLIT", outputs=n_bands, input_rate=BLOCK,
            output_rate=BLOCK, output_names=band_ports,
        )
        split.function = _split_fn()
        preset = graph.add_control_actor(
            "PRESET",
            decision=lambda _n, _inputs: ControlToken(
                Mode.SELECT_MANY if len(active) > 1 else Mode.SELECT_ONE,
                tuple(band_ports[i] for i in active),
            ),
        )
        preset.add_input("in", 1)
        preset.add_control_output("out", 1)
        src.add_output("to_preset", 1)
        graph.connect("SRC.to_preset", "PRESET.in", name="e_src_preset")
        graph.connect("PRESET.out", "SPLIT.ctrl", name="e_preset_split")
    else:
        split = graph.add_kernel("SPLIT", function=_split_fn())
        split.add_input("in", BLOCK)
        for port in band_ports:
            split.add_output(port, BLOCK)
    graph.connect("DEMOD.out", "SPLIT.in", name="e_demod")

    summer = graph.add_kernel("SUM", function=_sum_fn(n_bands))
    for i, port in enumerate(band_ports):
        band = graph.add_kernel(f"BAND{i}", function=_band_fn(taps[i], band_gains[i]))
        band.add_input("in", BLOCK)
        band.add_output("out", BLOCK)
        graph.connect(f"SPLIT.{port}", f"BAND{i}.in", name=f"e_split_{i}")
        summer.add_input(f"from{i}", BLOCK)
        graph.connect(f"BAND{i}.out", f"SUM.from{i}", name=f"e_band_{i}")
    summer.add_output("out", BLOCK)

    snk = graph.add_kernel("SNK")
    snk.add_input("in", BLOCK)
    graph.connect("SUM.out", "SNK.in", name="e_sum")
    return graph


def _demod_fn():
    def run(_n: int, consumed: dict):
        return list(fm_demodulate(np.array(consumed["in"])))
    return run


def _split_fn():
    """Duplicate the consumed block onto every (enabled) output port.

    Returns an :class:`_AllPorts` dict: the engine asks it for each
    enabled port and drops disabled ports, so the same function serves
    the static (all bands) and dynamic (preset subset) variants.
    """
    def run(_n: int, consumed: dict):
        samples = [v for vs in consumed.values() for v in vs]
        return _AllPorts(samples)
    return run


class _AllPorts(dict):
    """Sentinel dict returning the same block for any requested port."""

    def __init__(self, samples):
        super().__init__()
        self._samples = list(samples)

    def get(self, _key, _default=None):
        return list(self._samples)


def _band_fn(taps: np.ndarray, gain: float):
    def run(_n: int, consumed: dict):
        return list(gain * fir(np.array(consumed["in"]), taps))
    return run


def _sum_fn(n_bands: int):
    def run(_n: int, consumed: dict):
        total = np.zeros(BLOCK)
        for values in consumed.values():
            if values:
                total = total + np.array(values)
        return list(total)
    return run


@dataclass
class RedundancyReport:
    """Executed work and buffer demand: static vs. dynamic equalizer."""

    n_bands: int
    active_bands: tuple[int, ...]
    static_firings: int
    dynamic_firings: int
    static_buffer: int
    dynamic_buffer: int

    @property
    def firings_saved(self) -> float:
        return 1.0 - self.dynamic_firings / self.static_firings

    @property
    def buffer_saved(self) -> float:
        return 1.0 - self.dynamic_buffer / self.static_buffer


def compare_redundancy(
    n_bands: int = 6,
    active_bands: Sequence[int] = (0, 2),
    blocks: int = 4,
) -> RedundancyReport:
    """Run both variants on the same input and compare work/buffers.

    The *static* graph fires every band per block; the *dynamic* graph
    fires only the preset's active bands, and its unused channels hold
    no tokens — the FM-radio redundancy measurement promised in
    Sec. IV-B.  ``SUM`` in the dynamic variant uses a SELECT-aware
    firing rule (it consumes the active bands only), modeled here by
    restricting the graph to the preset before execution.
    """
    active = tuple(sorted(active_bands))
    static = build_fm_graph(n_bands, dynamic=False)
    dynamic = build_fm_graph(n_bands, active_bands=active, dynamic=True)
    keep_ports = ["in"] + [f"band{i}" for i in active]
    restricted = restrict_to_selection(dynamic, "SPLIT", keep_ports)
    sum_ports = [f"from{i}" for i in active] + ["out"]
    restricted = restrict_to_selection(restricted, "SUM", sum_ports)

    rng = np.random.default_rng(7)

    def src_fn(_n: int, _consumed: dict):
        return {"out": list(rng.normal(size=BLOCK)),
                "to_preset": [None]}

    static_firings = _run_and_count(static, src_fn, blocks)
    dynamic_firings = _run_and_count(restricted, src_fn, blocks)

    _, static_peaks = minimal_buffer_schedule(static.as_csdf())
    _, dynamic_peaks = minimal_buffer_schedule(restricted.as_csdf())
    return RedundancyReport(
        n_bands=n_bands,
        active_bands=active,
        static_firings=static_firings,
        dynamic_firings=dynamic_firings,
        static_buffer=total_buffer_size(static_peaks),
        dynamic_buffer=total_buffer_size(dynamic_peaks),
    )


def _run_and_count(graph: TPDFGraph, src_fn, blocks: int) -> int:
    graph.node("SRC").function = src_fn
    sim = Simulator(graph)
    trace = sim.run(limits={"SRC": blocks})
    return len(trace.firings)
