"""StreamIt-style FM radio workload (redundancy comparison, Sec. IV-B)."""

from .dsp import (
    bandpass_taps,
    equalizer_bands,
    fir,
    fm_demodulate,
    fm_modulate,
    lowpass_taps,
)
from .pipeline import BLOCK, RedundancyReport, build_fm_graph, compare_redundancy

__all__ = [
    "fm_modulate",
    "fm_demodulate",
    "lowpass_taps",
    "bandpass_taps",
    "fir",
    "equalizer_bands",
    "BLOCK",
    "build_fm_graph",
    "compare_redundancy",
    "RedundancyReport",
]
