"""Minimum buffer sizes of the OFDM demodulator (Fig. 8).

The paper reports, for one iteration of the application::

    Buff_TPDF = 3 + beta * (12*N + L)      (M = 4 selected by the control node)
    Buff_CSDF =     beta * (17*N + L)

and a 29% improvement (1 - 12/17 = 29.4%) of TPDF over CSDF,
"explained by the fact that the dynamic topology obtained using TPDF
... allows to remove unused edges".

We *measure* both numbers instead of assuming them: the TPDF graph is
restricted to the mode the control node selected (unused edges
removed, exactly the paper's argument), the CSDF baseline keeps both
demapper paths, and a buffer-minimizing single-processor iteration is
executed on each, summing per-channel occupancy peaks.  The paper's
closed forms are evaluated alongside for comparison.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ...csdf import minimal_buffer_schedule, total_buffer_size
from ...errors import AnalysisError
from ...tpdf import restrict_to_selection
from .pipeline import bindings_for, build_ofdm_csdf, build_ofdm_tpdf
from .qam import scheme_for_m


def paper_tpdf_buffer(beta: int, n: int, l: int) -> int:
    """The paper's closed form for TPDF (Fig. 8 caption)."""
    return 3 + beta * (12 * n + l)


def paper_csdf_buffer(beta: int, n: int, l: int) -> int:
    """The paper's closed form for CSDF (Fig. 8 caption)."""
    return beta * (17 * n + l)


def measured_tpdf_buffer(beta: int, n: int, l: int, m: int = 4) -> dict[str, int]:
    """Per-channel buffer peaks of one TPDF iteration in the selected
    mode (unused edges removed — dynamic topology)."""
    graph = build_ofdm_tpdf()
    port = "qam" if scheme_for_m(m) == "qam16" else "qpsk"
    restricted = restrict_to_selection(graph, "DUP", ["in", port])
    restricted = restrict_to_selection(restricted, "TRAN", [port, "out"])
    csdf = restricted.as_csdf()
    _, peaks = minimal_buffer_schedule(csdf, bindings_for(beta, n, l, m))
    return peaks


def measured_csdf_buffer(beta: int, n: int, l: int) -> dict[str, int]:
    """Per-channel buffer peaks of one CSDF-baseline iteration (both
    demapper paths always present)."""
    graph = build_ofdm_csdf()
    _, peaks = minimal_buffer_schedule(graph, bindings_for(beta, n, l, 4))
    return peaks


@dataclass
class Fig8Point:
    """One point of the Fig. 8 series."""

    beta: int
    n: int
    l: int
    tpdf_measured: int
    csdf_measured: int
    tpdf_paper: int
    csdf_paper: int

    @property
    def improvement(self) -> float:
        """Measured TPDF saving over CSDF (the paper reports ~29%)."""
        if not self.csdf_measured:
            return 0.0
        return 1.0 - self.tpdf_measured / self.csdf_measured


def fig8_point(beta: int, n: int, l: int = 1, m: int = 4) -> Fig8Point:
    return Fig8Point(
        beta=beta,
        n=n,
        l=l,
        tpdf_measured=total_buffer_size(measured_tpdf_buffer(beta, n, l, m)),
        csdf_measured=total_buffer_size(measured_csdf_buffer(beta, n, l)),
        tpdf_paper=paper_tpdf_buffer(beta, n, l),
        csdf_paper=paper_csdf_buffer(beta, n, l),
    )


def fig8_series(
    betas=tuple(range(10, 101, 10)),
    ns=(512, 1024),
    l: int = 1,
    m: int = 4,
    jobs: int | None = None,
    chunk_size: int | None = None,
) -> list[Fig8Point]:
    """The full Fig. 8 sweep: beta in 10..100, N in {512, 1024}.

    Runs through :func:`repro.analysis.analyze_batch` over two shared
    graph instances (the mode-restricted TPDF and the CSDF baseline):
    the symbolic balance solve, repetition vectors and consistency
    verdicts are computed once per graph and reused across all
    ``(beta, N)`` valuations instead of once per point.

    ``jobs``/``chunk_size`` fan the valuations out over the parallel
    batch-analysis service (identical results, see ``analyze_batch``);
    the two graphs shard to different workers and each worker warms a
    graph's caches once for all its points.
    """
    from ...analysis import analyze_batch

    graph = build_ofdm_tpdf()
    port = "qam" if scheme_for_m(m) == "qam16" else "qpsk"
    restricted = restrict_to_selection(graph, "DUP", ["in", port])
    restricted = restrict_to_selection(restricted, "TRAN", [port, "out"])
    tpdf_csdf = restricted.as_csdf()
    csdf = build_ofdm_csdf()

    grid = [(beta, n) for n in ns for beta in betas]
    options = dict(with_liveness=False, with_mcr=False, with_throughput=False)
    reports = analyze_batch(
        itertools.chain(
            ((tpdf_csdf, bindings_for(beta, n, l, m)) for beta, n in grid),
            ((csdf, bindings_for(beta, n, l, 4)) for beta, n in grid),
        ),
        jobs=jobs,
        chunk_size=chunk_size,
        **options,
    )
    tpdf_reports, csdf_reports = reports[: len(grid)], reports[len(grid):]
    def measured(report, beta, n):
        if report.total_buffer is None:
            detail = "; ".join(
                f"{stage}: {message}"
                for stage, message in {**report.skipped, **report.errors}.items()
            )
            raise AnalysisError(
                f"fig8 point (beta={beta}, N={n}) has no buffer measurement: {detail}"
            )
        return report.total_buffer

    return [
        Fig8Point(
            beta=beta,
            n=n,
            l=l,
            tpdf_measured=measured(tpdf, beta, n),
            csdf_measured=measured(baseline, beta, n),
            tpdf_paper=paper_tpdf_buffer(beta, n, l),
            csdf_paper=paper_csdf_buffer(beta, n, l),
        )
        for (beta, n), tpdf, baseline in zip(grid, tpdf_reports, csdf_reports)
    ]
