"""Cognitive-radio OFDM demodulator case study (Sec. IV-B, Fig. 7/8)."""

from .qam import BITS_PER_SYMBOL, demap_symbols, map_bits, scheme_for_m
from .tx import OFDMTransmitter, fft_symbols, remove_cyclic_prefix
from .pipeline import (
    BETA,
    L,
    M,
    N,
    OFDMRun,
    ScenarioRun,
    bindings_for,
    build_ofdm_csdf,
    build_ofdm_scenario_tpdf,
    build_ofdm_tpdf,
    run_ofdm_scenarios,
    run_ofdm_tpdf,
)
from .buffers import (
    Fig8Point,
    fig8_point,
    fig8_series,
    measured_csdf_buffer,
    measured_tpdf_buffer,
    paper_csdf_buffer,
    paper_tpdf_buffer,
)

__all__ = [
    "BITS_PER_SYMBOL",
    "map_bits",
    "demap_symbols",
    "scheme_for_m",
    "OFDMTransmitter",
    "remove_cyclic_prefix",
    "fft_symbols",
    "BETA",
    "N",
    "L",
    "M",
    "build_ofdm_tpdf",
    "build_ofdm_csdf",
    "build_ofdm_scenario_tpdf",
    "bindings_for",
    "run_ofdm_tpdf",
    "run_ofdm_scenarios",
    "OFDMRun",
    "ScenarioRun",
    "Fig8Point",
    "fig8_point",
    "fig8_series",
    "measured_tpdf_buffer",
    "measured_csdf_buffer",
    "paper_tpdf_buffer",
    "paper_csdf_buffer",
]
