"""The OFDM demodulator graphs (Fig. 7 of the paper).

TPDF variant (runtime-reconfigurable)::

    SRC -+-> RCP -> FFT -> DUP -+-> QPSK -+-> TRAN -> SNK
         |                      +-> QAM  -+     ^
         +-> CON ---------------^(ctrl)---------+

``SRC`` emits ``beta * (N + L)`` samples per activation plus one
configuration token to the control actor ``CON``; ``CON`` steers both
the select-duplicate ``DUP`` (which demapper receives the symbols) and
the transaction ``TRAN`` (which demapper's bits reach the sink).  Only
the selected path executes — the paper's dynamic-topology advantage.

CSDF baseline (static topology): no control actor; ``DUP`` duplicates
to *both* demappers, both run every iteration, and ``TRAN`` forwards
both bit streams to the sink, which discards the redundant one.  This
is the "redundant calculations" cost the evaluation quantifies
(Fig. 8).

Rates are symbolic in the paper's four parameters ``beta``, ``N``,
``L``, ``M``; graphs are built once and bound per experiment point.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...csdf import CSDFGraph
from ...sim import Simulator
from ...symbolic import Param, Poly
from ...tpdf import ControlToken, Mode, TPDFGraph, select_duplicate, transaction
from .qam import BITS_PER_SYMBOL, demap_symbols, scheme_for_m
from .tx import OFDMTransmitter, fft_symbols, remove_cyclic_prefix

#: Domains from Sec. IV-B: beta in [1, 100], N in {512, 1024}, L < N, M in {2, 4}.
BETA = Param("beta", lo=1, hi=100)
N = Param("N", lo=2, hi=1024)
L = Param("L", lo=1, hi=64)
M = Param("M", lo=2, hi=4)


def build_ofdm_tpdf() -> TPDFGraph:
    """The Fig. 7 TPDF graph with symbolic rates."""
    beta, n, l, m = (Poly.var(p.name) for p in (BETA, N, L, M))
    graph = TPDFGraph("ofdm_tpdf", parameters=[BETA, N, L, M])

    src = graph.add_kernel("SRC")
    src.add_output("out", beta * (n + l))
    src.add_output("to_con", 1)

    con = graph.add_control_actor("CON")
    con.add_input("in", 1)
    con.add_control_output("to_dup", 1)
    con.add_control_output("to_tran", 1)

    rcp = graph.add_kernel("RCP")
    rcp.add_input("in", beta * (n + l))
    rcp.add_output("out", beta * n)

    fft = graph.add_kernel("FFT")
    fft.add_input("in", beta * n)
    fft.add_output("out", beta * n)

    dup = select_duplicate(
        graph, "DUP", outputs=2, input_rate=beta * n, output_rate=beta * n,
        output_names=["qpsk", "qam"],
    )

    qpsk = graph.add_kernel("QPSK")
    qpsk.add_input("in", beta * n)
    qpsk.add_output("out", 2 * beta * n)

    qam = graph.add_kernel("QAM")
    qam.add_input("in", beta * n)
    qam.add_output("out", 4 * beta * n)

    tran = transaction(
        graph, "TRAN", inputs=2, input_names=["qpsk", "qam"],
        priorities=[0, 1], action="select", output_rate=m * beta * n,
    )
    # Per-input rates: each demapper delivers its own bit count; the
    # SELECT_ONE mode decides which one is consumed (the Rk table).
    tran.port("qpsk").rates = _rate_seq(2 * beta * n)
    tran.port("qam").rates = _rate_seq(4 * beta * n)

    snk = graph.add_kernel("SNK")
    snk.add_input("in", m * beta * n)

    graph.connect("SRC.out", "RCP.in", name="e_src")
    graph.connect("SRC.to_con", "CON.in", name="e_src_con")
    graph.connect("CON.to_dup", "DUP.ctrl", name="e_con_dup")
    graph.connect("CON.to_tran", "TRAN.ctrl", name="e_con_tran")
    graph.connect("RCP.out", "FFT.in", name="e_rcp")
    graph.connect("FFT.out", "DUP.in", name="e_fft")
    graph.connect("DUP.qpsk", "QPSK.in", name="e_dup_qpsk")
    graph.connect("DUP.qam", "QAM.in", name="e_dup_qam")
    graph.connect("QPSK.out", "TRAN.qpsk", name="e_qpsk_tran")
    graph.connect("QAM.out", "TRAN.qam", name="e_qam_tran")
    graph.connect("TRAN.out", "SNK.in", name="e_tran_snk")
    _ = dup, rcp, fft, qpsk, qam, tran, snk, src, con
    return graph


def _rate_seq(value):
    from ...csdf.rates import RateSequence

    return RateSequence.of(value)


def build_ofdm_csdf() -> CSDFGraph:
    """The static CSDF baseline: both demappers always execute and the
    transaction forwards both bit streams (Fig. 8's comparison)."""
    beta, n, l = (Poly.var(p.name) for p in (BETA, N, L))
    graph = CSDFGraph("ofdm_csdf")
    for name in ("SRC", "RCP", "FFT", "DUP", "QPSK", "QAM", "TRAN", "SNK"):
        graph.add_actor(name)
    graph.add_channel("e_src", "SRC", "RCP", beta * (n + l), beta * (n + l))
    graph.add_channel("e_rcp", "RCP", "FFT", beta * n, beta * n)
    graph.add_channel("e_fft", "FFT", "DUP", beta * n, beta * n)
    graph.add_channel("e_dup_qpsk", "DUP", "QPSK", beta * n, beta * n)
    graph.add_channel("e_dup_qam", "DUP", "QAM", beta * n, beta * n)
    graph.add_channel("e_qpsk_tran", "QPSK", "TRAN", 2 * beta * n, 2 * beta * n)
    graph.add_channel("e_qam_tran", "QAM", "TRAN", 4 * beta * n, 4 * beta * n)
    graph.add_channel("e_tran_snk_qpsk", "TRAN", "SNK", 2 * beta * n, 2 * beta * n)
    graph.add_channel("e_tran_snk_qam", "TRAN", "SNK", 4 * beta * n, 4 * beta * n)
    return graph


def bindings_for(beta: int, n: int, l: int, m: int) -> dict[str, int]:
    """Parameter valuation for one experiment point."""
    return {"beta": beta, "N": n, "L": l, "M": m}


@dataclass
class OFDMRun:
    """Functional end-to-end result of the TPDF demodulator."""

    sent_bits: np.ndarray
    received_bits: np.ndarray
    scheme: str
    trace: object

    @property
    def bit_errors(self) -> int:
        length = min(self.sent_bits.size, self.received_bits.size)
        return int(np.sum(self.sent_bits[:length] != self.received_bits[:length]))

    @property
    def ber(self) -> float:
        length = min(self.sent_bits.size, self.received_bits.size)
        return self.bit_errors / length if length else 0.0


def build_ofdm_scenario_tpdf() -> TPDFGraph:
    """Variant of the Fig. 7 graph supporting *runtime* scheme switching.

    The paper calls the demodulator "runtime-reconfigurable": the
    control node may pick QPSK or QAM per activation.  With bit-level
    tokens, TRAN's output rate would have to change with the mode;
    here TRAN packs each activation's bits into a single frame token
    (rate 1) so consecutive activations can use different schemes in
    one run.  Everything upstream of TRAN is identical to
    :func:`build_ofdm_tpdf`.
    """
    beta, n, l = (Poly.var(p.name) for p in (BETA, N, L))
    graph = TPDFGraph("ofdm_scenarios", parameters=[BETA, N, L])

    src = graph.add_kernel("SRC")
    src.add_output("out", beta * (n + l))
    src.add_output("to_con", 1)

    con = graph.add_control_actor("CON")
    con.add_input("in", 1)
    con.add_control_output("to_dup", 1)
    con.add_control_output("to_tran", 1)

    rcp = graph.add_kernel("RCP")
    rcp.add_input("in", beta * (n + l))
    rcp.add_output("out", beta * n)

    fft = graph.add_kernel("FFT")
    fft.add_input("in", beta * n)
    fft.add_output("out", beta * n)

    select_duplicate(
        graph, "DUP", outputs=2, input_rate=beta * n, output_rate=beta * n,
        output_names=["qpsk", "qam"],
    )

    qpsk = graph.add_kernel("QPSK")
    qpsk.add_input("in", beta * n)
    qpsk.add_output("out", 2 * beta * n)

    qam = graph.add_kernel("QAM")
    qam.add_input("in", beta * n)
    qam.add_output("out", 4 * beta * n)

    tran = transaction(
        graph, "TRAN", inputs=2, input_names=["qpsk", "qam"],
        priorities=[0, 1], action="select", output_rate=1,
    )
    tran.port("qpsk").rates = _rate_seq(2 * beta * n)
    tran.port("qam").rates = _rate_seq(4 * beta * n)
    # DUP and TRAN share the same decision: the rejected demapper never
    # runs, so late-discard debt must not swallow future activations.
    tran.meta["discard_late"] = False

    snk = graph.add_kernel("SNK")
    snk.add_input("in", 1)

    graph.connect("SRC.out", "RCP.in", name="e_src")
    graph.connect("SRC.to_con", "CON.in", name="e_src_con")
    graph.connect("CON.to_dup", "DUP.ctrl", name="e_con_dup")
    graph.connect("CON.to_tran", "TRAN.ctrl", name="e_con_tran")
    graph.connect("RCP.out", "FFT.in", name="e_rcp")
    graph.connect("FFT.out", "DUP.in", name="e_fft")
    graph.connect("DUP.qpsk", "QPSK.in", name="e_dup_qpsk")
    graph.connect("DUP.qam", "QAM.in", name="e_dup_qam")
    graph.connect("QPSK.out", "TRAN.qpsk", name="e_qpsk_tran")
    graph.connect("QAM.out", "TRAN.qam", name="e_qam_tran")
    graph.connect("TRAN.out", "SNK.in", name="e_tran_snk")
    _ = qpsk, qam
    return graph


@dataclass
class ScenarioRun:
    """Per-activation results of a runtime-reconfigurable run."""

    schemes: list[str]
    bit_errors: list[int]
    bits_per_activation: list[int]
    trace: object

    @property
    def total_errors(self) -> int:
        return sum(self.bit_errors)


def run_ofdm_scenarios(
    schemes: list[str],
    beta: int = 2,
    n: int = 16,
    l: int = 4,
    seed: int = 0,
) -> ScenarioRun:
    """Demodulate consecutive activations with *different* schemes.

    This is the paper's context-dependence in action: the control node
    reads SRC's per-activation header and reconfigures DUP and TRAN at
    runtime — one graph, alternating QPSK/16-QAM traffic.
    """
    if not schemes:
        raise ValueError("need at least one scheme")
    for scheme in schemes:
        if scheme not in BITS_PER_SYMBOL:
            raise ValueError(f"unknown scheme {scheme!r}")
    graph = build_ofdm_scenario_tpdf()
    transmitters = {
        scheme: OFDMTransmitter(n=n, l=l, scheme=scheme, beta=beta,
                                seed=seed + index)
        for index, scheme in enumerate(dict.fromkeys(schemes))
    }
    sent_per_activation: list[np.ndarray] = []
    received_frames: list[np.ndarray] = []

    def src_fn(k: int, _consumed):
        scheme = schemes[k % len(schemes)]
        tx = transmitters[scheme]
        samples = tx.activation()
        sent_per_activation.append(tx.sent_bits[-1])
        return {"out": list(samples), "to_con": [scheme]}

    def con_decision(_k: int, inputs) -> ControlToken:
        port = "qam" if (inputs and inputs[0] == "qam16") else "qpsk"
        return ControlToken(Mode.SELECT_ONE, (port,))

    def tran_fn(_k: int, consumed):
        bits = [v for vs in consumed.values() for v in vs]
        return [np.array(bits, dtype=int)]  # one frame token per activation

    def snk_fn(_k: int, consumed):
        received_frames.append(consumed["in"][0])
        return None

    graph.node("SRC").function = src_fn
    graph.node("CON").decision = con_decision
    graph.node("RCP").function = lambda _k, c: list(
        remove_cyclic_prefix(np.array(c["in"]), n, l))
    graph.node("FFT").function = lambda _k, c: list(
        fft_symbols(np.array(c["in"]), n))
    graph.node("DUP").function = lambda _k, c: list(c["in"])
    graph.node("QPSK").function = lambda _k, c: [
        int(b) for b in demap_symbols(np.array(c["in"]), "qpsk")]
    graph.node("QAM").function = lambda _k, c: [
        int(b) for b in demap_symbols(np.array(c["in"]), "qam16")]
    graph.node("TRAN").function = tran_fn
    graph.node("SNK").function = snk_fn

    sim = Simulator(graph, bindings={"beta": beta, "N": n, "L": l})
    trace = sim.run(limits={"SRC": len(schemes)})

    errors = []
    sizes = []
    for sent, got in zip(sent_per_activation, received_frames):
        sizes.append(int(sent.size))
        length = min(sent.size, got.size)
        errors.append(int(np.sum(sent[:length] != got[:length]))
                      + abs(int(sent.size) - int(got.size)))
    return ScenarioRun(
        schemes=list(schemes),
        bit_errors=errors,
        bits_per_activation=sizes,
        trace=trace,
    )


def run_ofdm_tpdf(
    beta: int,
    n: int,
    l: int,
    m: int,
    activations: int = 1,
    noise_std: float = 0.0,
    seed: int = 0,
) -> OFDMRun:
    """Execute the TPDF demodulator on real OFDM waveforms.

    Attaches the DSP functions to the symbolic graph, binds the
    parameters, and simulates ``activations`` firings of SRC.  In a
    noiseless channel the received bits must equal the sent bits.
    """
    scheme = scheme_for_m(m)
    graph = build_ofdm_tpdf()
    tx = OFDMTransmitter(n=n, l=l, scheme=scheme, beta=beta, seed=seed)
    received: list[int] = []

    def src_fn(_k: int, _consumed: dict):
        return {"out": list(tx.activation(noise_std)), "to_con": [scheme]}

    def con_decision(_k: int, inputs: list) -> ControlToken:
        # SRC forwards the active scheme; DUP's outputs and TRAN's
        # inputs share the port names "qpsk"/"qam", so one token steers
        # both (the bracketed control region of Sec. IV-B).
        active = inputs[0] if inputs else scheme
        port = "qam" if active == "qam16" else "qpsk"
        return ControlToken(Mode.SELECT_ONE, (port,))

    def rcp_fn(_k: int, consumed: dict):
        return list(remove_cyclic_prefix(np.array(consumed["in"]), n, l))

    def fft_fn(_k: int, consumed: dict):
        return list(fft_symbols(np.array(consumed["in"]), n))

    def demap_fn(sch: str):
        def run(_k: int, consumed: dict):
            return [int(b) for b in demap_symbols(np.array(consumed["in"]), sch)]
        return run

    def dup_fn(_k: int, consumed: dict):
        return list(consumed["in"])

    def snk_fn(_k: int, consumed: dict):
        received.extend(consumed["in"])
        return None

    graph.node("SRC").function = src_fn
    graph.node("CON").decision = con_decision
    graph.node("RCP").function = rcp_fn
    graph.node("FFT").function = fft_fn
    graph.node("DUP").function = dup_fn
    graph.node("QPSK").function = demap_fn("qpsk")
    graph.node("QAM").function = demap_fn("qam16")
    graph.node("SNK").function = snk_fn

    sim = Simulator(graph, bindings=bindings_for(beta, n, l, m), record_values=False)
    trace = sim.run(limits={"SRC": activations})
    return OFDMRun(
        sent_bits=tx.all_sent_bits(),
        received_bits=np.array(received, dtype=int),
        scheme=scheme,
        trace=trace,
    )
