"""Constellation mapping / demapping for the OFDM case study.

The paper's demodulator has "a M-ary QAM demodulation, with a
configurable QPSK configuration (M = 2 or M = 4)" where ``M`` is the
number of bits per constellation symbol: M = 2 is QPSK (4 points),
M = 4 is 16-QAM.  Both use Gray coding so a hard decision flips at
most one bit per axis error; demapping is exact in a noiseless
channel, which the functional tests rely on.
"""

from __future__ import annotations

import numpy as np

#: bits per symbol for each scheme name.
BITS_PER_SYMBOL = {"qpsk": 2, "qam16": 4}

_SQRT2 = np.sqrt(2.0)
_SQRT10 = np.sqrt(10.0)

#: Gray-coded PAM levels for 16-QAM: bit pair (b0 b1) -> amplitude.
_PAM4 = {(0, 0): -3.0, (0, 1): -1.0, (1, 1): 1.0, (1, 0): 3.0}
_PAM4_INV = {v: k for k, v in _PAM4.items()}
_PAM4_LEVELS = np.array(sorted(_PAM4_INV))


def scheme_for_m(m: int) -> str:
    """Scheme name for the paper's parameter M (2 -> QPSK, 4 -> 16-QAM)."""
    if m == 2:
        return "qpsk"
    if m == 4:
        return "qam16"
    raise ValueError(f"M must be 2 or 4 (paper Sec. IV-B), got {m}")


def map_bits(bits: np.ndarray, scheme: str) -> np.ndarray:
    """Map a bit array (0/1) to unit-average-power complex symbols.

    ``len(bits)`` must be a multiple of the scheme's bits/symbol.
    """
    bits = np.asarray(bits, dtype=int).ravel()
    m = BITS_PER_SYMBOL[scheme]
    if bits.size % m:
        raise ValueError(f"{bits.size} bits is not a multiple of {m}")
    groups = bits.reshape(-1, m)
    if scheme == "qpsk":
        # Gray: bit 0 -> I sign, bit 1 -> Q sign (0 -> -1, 1 -> +1).
        i = 2.0 * groups[:, 0] - 1.0
        q = 2.0 * groups[:, 1] - 1.0
        return (i + 1j * q) / _SQRT2
    # 16-QAM: bits (b0 b1) -> I level, (b2 b3) -> Q level.
    i = np.array([_PAM4[(b0, b1)] for b0, b1 in groups[:, :2]])
    q = np.array([_PAM4[(b0, b1)] for b0, b1 in groups[:, 2:]])
    return (i + 1j * q) / _SQRT10


def demap_symbols(symbols: np.ndarray, scheme: str) -> np.ndarray:
    """Hard-decision demapping back to bits."""
    symbols = np.asarray(symbols, dtype=complex).ravel()
    if scheme == "qpsk":
        bits = np.empty((symbols.size, 2), dtype=int)
        bits[:, 0] = (symbols.real >= 0).astype(int)
        bits[:, 1] = (symbols.imag >= 0).astype(int)
        return bits.ravel()
    scaled = symbols * _SQRT10
    bits = np.empty((symbols.size, 4), dtype=int)
    for index, axis in ((0, scaled.real), (2, scaled.imag)):
        nearest = _PAM4_LEVELS[
            np.argmin(np.abs(axis[:, None] - _PAM4_LEVELS[None, :]), axis=1)
        ]
        pairs = np.array([_PAM4_INV[level] for level in nearest])
        bits[:, index:index + 2] = pairs
    return bits.ravel()
