"""OFDM transmitter — the synthetic signal source for the case study.

The paper's ``SRC`` actor "generates random values to simulate a
sampler"; to make the receiver chain *testable* we generate a real
OFDM waveform instead: random bits, constellation mapping, per-symbol
IFFT over ``N`` carriers, and a cyclic prefix of ``L`` samples (used
against inter-symbol interference, Sec. IV-B).  A noiseless channel
means the demodulator must recover the bits exactly; an optional AWGN
channel exercises the robustness tests.
"""

from __future__ import annotations

import numpy as np

from .qam import BITS_PER_SYMBOL, map_bits


class OFDMTransmitter:
    """Generates OFDM activations of ``beta`` symbols each.

    One *activation* (one firing of SRC) covers ``beta`` OFDM symbols:
    ``beta * M * N`` payload bits, transmitted as ``beta * (N + L)``
    complex time-domain samples.
    """

    def __init__(self, n: int, l: int, scheme: str, beta: int, seed: int = 0):
        if n < 2:
            raise ValueError("OFDM symbol length N must be at least 2")
        if l < 0 or l >= n:
            raise ValueError("cyclic prefix L must satisfy 0 <= L < N")
        if beta < 1:
            raise ValueError("vectorization degree beta must be >= 1")
        if scheme not in BITS_PER_SYMBOL:
            raise ValueError(f"unknown scheme {scheme!r}")
        self.n = n
        self.l = l
        self.scheme = scheme
        self.beta = beta
        self._rng = np.random.default_rng(seed)
        #: every payload bit ever emitted, for end-to-end verification
        self.sent_bits: list[np.ndarray] = []

    @property
    def bits_per_activation(self) -> int:
        return self.beta * BITS_PER_SYMBOL[self.scheme] * self.n

    @property
    def samples_per_activation(self) -> int:
        return self.beta * (self.n + self.l)

    def activation(self, noise_std: float = 0.0) -> np.ndarray:
        """One activation: ``beta * (N + L)`` time-domain samples."""
        bits = self._rng.integers(0, 2, size=self.bits_per_activation)
        self.sent_bits.append(bits)
        symbols = map_bits(bits, self.scheme).reshape(self.beta, self.n)
        # IFFT per OFDM symbol; "ortho" keeps unit power so FFT at the
        # receiver returns the constellation unscaled.
        time_domain = np.fft.ifft(symbols, axis=1, norm="ortho")
        if self.l:
            with_cp = np.concatenate([time_domain[:, -self.l:], time_domain], axis=1)
        else:
            with_cp = time_domain
        stream = with_cp.ravel()
        if noise_std > 0.0:
            noise = self._rng.normal(0.0, noise_std / np.sqrt(2.0), (stream.size, 2))
            stream = stream + noise[:, 0] + 1j * noise[:, 1]
        return stream

    def all_sent_bits(self) -> np.ndarray:
        if not self.sent_bits:
            return np.empty(0, dtype=int)
        return np.concatenate(self.sent_bits)


def remove_cyclic_prefix(samples: np.ndarray, n: int, l: int) -> np.ndarray:
    """Strip the CP from a stream of whole ``(N + L)``-sample symbols."""
    samples = np.asarray(samples)
    if samples.size % (n + l):
        raise ValueError(
            f"{samples.size} samples is not a whole number of (N+L)={n + l} blocks"
        )
    blocks = samples.reshape(-1, n + l)
    return blocks[:, l:].ravel()


def fft_symbols(samples: np.ndarray, n: int) -> np.ndarray:
    """Per-symbol FFT back to the frequency domain (the ``FFT`` actor)."""
    samples = np.asarray(samples)
    if samples.size % n:
        raise ValueError(f"{samples.size} samples is not a whole number of N={n} blocks")
    return np.fft.fft(samples.reshape(-1, n), axis=1, norm="ortho").ravel()
