"""Case-study applications of the paper's evaluation (Sec. IV).

* :mod:`repro.apps.edge` — deadline-driven edge detection (Fig. 6);
* :mod:`repro.apps.ofdm` — cognitive-radio OFDM demodulator (Fig. 7/8);
* :mod:`repro.apps.fmradio` — StreamIt-style FM radio (redundancy note).
"""

from . import edge, fmradio, ofdm

__all__ = ["edge", "ofdm", "fmradio"]
