"""A VC-1-style parametric video decoder as a TPDF graph (EXT1).

Sec. V: "all SPDF and BPDF case studies (e.g., the VC-1 Video Decoder)
... can be replicated using our approach without introducing parameter
communication and synchronization between firings of modifiers and
users".  The SPDF VC-1 decoder is a pipeline whose rates are parametric
in the number of macroblocks per frame; we reproduce its shape::

    BITS -+-> ED -> IQT -+-> MC -> SNK
          |              |    ^ |
          +-> HDR(CON)   |    +-+  reference-frame feedback (1 initial)
                (ctrl) --+-> MC.ctrl

* ``BITS`` emits ``p`` quantized-block tokens per frame plus one header
  token; ``p`` is the integer parameter *macroblocks per frame*.
* ``ED`` (entropy decode) and ``IQT`` (inverse quantize + inverse DCT)
  process ``p`` blocks per firing.
* ``MC`` (motion compensation) consumes ``p`` residual blocks, one
  reference frame from its feedback channel (seeded with one initial
  grey frame — that token is what makes the cycle live), and a control
  token selecting intra/inter mode; it emits the reconstructed frame to
  the sink and back onto the feedback channel.

The TPDF benefit demonstrated here: ``p`` appears only in rate
expressions — no modifier/user parameter-communication actors are
added, unlike the SPDF encoding (the paper's point).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...sim import Simulator, Trace
from ...symbolic import Param, Poly
from ...tpdf import ControlToken, Mode, TPDFGraph
from .blocks import (
    block_count,
    dct_block,
    dequantize,
    idct_block,
    join_blocks,
    quantize,
    split_blocks,
)

#: macroblocks per frame — the decoder's integer parameter.
P = Param("p", lo=1, hi=4096)


def build_decoder_graph() -> TPDFGraph:
    """The parametric decoder graph (rates in ``p``)."""
    p = Poly.var(P.name)
    graph = TPDFGraph("vc1_decoder", parameters=[P])

    bits = graph.add_kernel("BITS")
    bits.add_output("blocks", p)
    bits.add_output("header", 1)

    hdr = graph.add_control_actor("HDR")
    hdr.add_input("in", 1)
    hdr.add_control_output("mode", 1)

    ed = graph.add_kernel("ED")
    ed.add_input("in", p)
    ed.add_output("out", p)

    iqt = graph.add_kernel("IQT")
    iqt.add_input("in", p)
    iqt.add_output("out", p)

    mc = graph.add_kernel("MC", modes=(Mode.WAIT_ALL, Mode.SELECT_ONE,
                                       Mode.SELECT_MANY))
    mc.add_input("residual", p)
    mc.add_input("reference", 1)
    mc.add_control_port("ctrl", 1)
    mc.add_output("frame", 1)
    mc.add_output("feedback", 1)

    snk = graph.add_kernel("SNK")
    snk.add_input("in", 1)

    graph.connect("BITS.blocks", "ED.in", name="e_bits")
    graph.connect("BITS.header", "HDR.in", name="e_hdr")
    graph.connect("HDR.mode", "MC.ctrl", name="e_mode")
    graph.connect("ED.out", "IQT.in", name="e_ed")
    graph.connect("IQT.out", "MC.residual", name="e_iqt")
    graph.connect("MC.frame", "SNK.in", name="e_out")
    graph.connect("MC.feedback", "MC.reference", name="e_ref", initial_tokens=1)
    return graph


@dataclass
class DecodeResult:
    frames: list[np.ndarray]
    trace: Trace

    def psnr(self, originals: list[np.ndarray]) -> float:
        """Peak signal-to-noise ratio vs the originals (dB; inf = exact)."""
        err = 0.0
        count = 0
        for ours, theirs in zip(self.frames, originals):
            err += float(((ours - theirs) ** 2).sum())
            count += theirs.size
        if err == 0.0:
            return float("inf")
        mse = err / count
        return 10.0 * np.log10(255.0**2 / mse)


def encode_sequence(frames: list[np.ndarray], step: float = 1.0):
    """Toy intra encoder: per-frame list of quantized DCT blocks.

    (The decoder's feedback path is exercised with inter prediction in
    ``mode='inter'`` below; encoding stays intra for simplicity —
    residuals are then full blocks and reconstruction is step-exact.)
    """
    payload = []
    for frame in frames:
        payload.append([quantize(dct_block(b), step) for b in split_blocks(frame)])
    return payload


def run_decoder(
    frames: list[np.ndarray],
    step: float = 1.0,
    mode: str = "intra",
) -> DecodeResult:
    """Decode an encoded sequence through the TPDF graph.

    ``mode='intra'`` reconstructs each frame from its own blocks;
    ``mode='inter'`` adds the previous reconstructed frame (from the
    feedback channel) to a zero-mean residual — both paths exercise the
    same graph, the control token selects which inputs MC uses.
    """
    if mode not in ("intra", "inter"):
        raise ValueError(f"unknown decode mode {mode!r}")
    if not frames:
        raise ValueError("need at least one frame")
    shape = frames[0].shape
    p_value = block_count(frames[0])
    if mode == "inter":
        # Residual coding against the previous *original* frame keeps the
        # toy encoder one-pass while still exercising the feedback path.
        residual_frames = [frames[0]]
        for prev, cur in zip(frames, frames[1:]):
            residual_frames.append(cur - prev)
        payload = encode_sequence(residual_frames, step)
    else:
        payload = encode_sequence(frames, step)

    graph = build_decoder_graph()
    out_frames: list[np.ndarray] = []

    def bits_fn(n: int, _consumed):
        return {"blocks": list(payload[n]), "header": [mode if n else "intra"]}

    def hdr_decision(_n: int, inputs) -> ControlToken:
        frame_mode = inputs[0] if inputs else "intra"
        if frame_mode == "intra":
            # Intra frames ignore the reference input (SELECT residual only).
            return ControlToken(Mode.SELECT_ONE, ("residual",))
        return ControlToken(Mode.SELECT_MANY, ("residual", "reference"))

    def ed_fn(_n: int, consumed):
        return list(consumed["in"])  # entropy decode is a no-op in the toy codec

    def iqt_fn(_n: int, consumed):
        return [idct_block(dequantize(levels, step)) for levels in consumed["in"]]

    def mc_fn(_n: int, consumed):
        blocks = consumed["residual"]
        frame = join_blocks(list(blocks), shape)
        if consumed.get("reference"):
            frame = frame + consumed["reference"][0]
        return {"frame": [frame], "feedback": [frame]}

    def snk_fn(_n: int, consumed):
        out_frames.append(consumed["in"][0])
        return None

    graph.node("BITS").function = bits_fn
    graph.node("HDR").decision = hdr_decision
    graph.node("ED").function = ed_fn
    graph.node("IQT").function = iqt_fn
    graph.node("MC").function = mc_fn
    graph.node("SNK").function = snk_fn

    sim = Simulator(graph, bindings={"p": p_value})
    trace = sim.run(limits={"BITS": len(frames)})
    return DecodeResult(frames=out_frames, trace=trace)
