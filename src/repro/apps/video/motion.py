"""AVC-style quality-threshold motion search (Sec. V, last sentence).

"We also improved the quality of the AVC Encoder ... by using a quality
threshold for the motion vector detection, implemented with a
Transaction kernel, to choose dynamically the highest quality video
available within real-time constraints."

The experiment: three motion-estimation kernels (zero-MV, three-step,
full search) race on each macroblock batch; a clock fires every
``deadline`` model-ms and the Transaction forwards the best *finished*
search's motion vectors.  Tight deadlines yield cheap/low-quality
vectors, loose deadlines the full-search ones — measured as average SAD
of the selected vectors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...sim import Simulator
from ...tpdf import TPDFGraph, clock, transaction
from .blocks import (
    BLOCK,
    MOTION_SEARCHES,
    SEARCH_COST,
    SEARCH_QUALITY,
    split_blocks,
)

#: model milliseconds per macroblock probe.
MS_PER_PROBE = 0.05


def _search_all_blocks(strategy: str, reference: np.ndarray,
                       current: np.ndarray, radius: int = 4):
    """Run one strategy over every macroblock; returns (vectors, total SAD)."""
    search = MOTION_SEARCHES[strategy]
    cols = current.shape[1] // BLOCK
    vectors = []
    total = 0.0
    for index, block in enumerate(split_blocks(current)):
        r, c = divmod(index, cols)
        mv, cost = search(reference, block, r * BLOCK, c * BLOCK, radius)
        vectors.append(mv)
        total += cost
    return vectors, total


@dataclass
class MotionExperiment:
    deadline: float
    chosen_strategy: list[str]
    chosen_sad: list[float]
    #: per-strategy average SAD had it been always selected
    strategy_sad: dict[str, float]

    @property
    def mean_sad(self) -> float:
        return sum(self.chosen_sad) / len(self.chosen_sad) if self.chosen_sad else 0.0


def build_motion_graph(frame_pairs, deadline: float) -> tuple[TPDFGraph, list]:
    """SRC -> {zero, threestep, full} -> Transaction <- clock."""
    graph = TPDFGraph("avc_motion")
    pairs = list(frame_pairs)

    src = graph.add_kernel(
        "SRC", exec_time=0.0,
        function=lambda n, _c: pairs[n % len(pairs)],
    )
    strategies = ("zero", "threestep", "full")
    for strategy in strategies:
        src.add_output(f"to_{strategy}", 1)

    def make_me(strategy: str):
        def run(_n: int, consumed):
            reference, current = consumed["in"][0]
            vectors, total = _search_all_blocks(strategy, reference, current)
            return (strategy, vectors, total)
        return run

    for strategy in strategies:
        kernel = graph.add_kernel(strategy, function=make_me(strategy))
        blocks = (pairs[0][1].shape[0] // BLOCK) * (pairs[0][1].shape[1] // BLOCK)
        kernel.meta["time_fn"] = (
            lambda _n, _c, s=strategy, b=blocks: SEARCH_COST[s] * b * MS_PER_PROBE
        )
        kernel.add_input("in", 1)
        kernel.add_output("out", 1)
        graph.connect(f"SRC.to_{strategy}", f"{strategy}.in")

    tran = transaction(
        graph, "TRAN", inputs=3,
        input_names=[f"from_{s}" for s in strategies],
        priorities=[SEARCH_QUALITY[s] for s in strategies],
        action="priority_deadline", exec_time=0.0,
    )
    for strategy in strategies:
        graph.connect(f"{strategy}.out", f"TRAN.from_{strategy}")
    timer = clock(graph, "CLK", period=deadline)
    graph.connect("CLK.tick", "TRAN.ctrl")

    chosen: list = []
    snk = graph.add_kernel("SNK", exec_time=0.0,
                           function=lambda _n, c: chosen.append(c["in"][0]))
    snk.add_input("in", 1)
    graph.connect("TRAN.out", "SNK.in")
    _ = tran, timer, src
    return graph, chosen


def run_motion_experiment(frames, deadline: float) -> MotionExperiment:
    """Race the three searches on consecutive frame pairs under the
    given deadline (model ms)."""
    pairs = [(prev, cur) for prev, cur in zip(frames, frames[1:])]
    if not pairs:
        raise ValueError("need at least two frames")
    graph, chosen = build_motion_graph(pairs, deadline)
    sim = Simulator(graph, record_values=True)
    worst = SEARCH_COST["full"] * len(split_blocks(pairs[0][1])) * MS_PER_PROBE
    horizon = (len(pairs) + 1) * max(deadline, worst) + deadline
    sim.run(until=horizon, limits={"SRC": len(pairs)})

    strategy_sad = {
        strategy: float(np.mean([
            _search_all_blocks(strategy, ref, cur)[1] for ref, cur in pairs
        ]))
        for strategy in ("zero", "threestep", "full")
    }
    return MotionExperiment(
        deadline=deadline,
        chosen_strategy=[entry[0] for entry in chosen],
        chosen_sad=[entry[2] for entry in chosen],
        strategy_sad=strategy_sad,
    )
