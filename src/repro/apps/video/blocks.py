"""Toy block-based video codec primitives (the VC-1/AVC substrate).

Sec. V claims the SPDF/BPDF case studies — the VC-1 video decoder — can
be replicated in TPDF, and that an AVC encoder's motion-vector search
benefits from a Transaction-kernel quality threshold.  To make those
claims *executable* we implement a small but real block codec:

* 8x8 block DCT / inverse DCT (scipy, type-II orthonormal),
* uniform quantization,
* motion estimation over macroblocks with three search strategies of
  increasing cost/quality (zero-MV, three-step search, full search),
* SAD (sum of absolute differences) as the matching metric.

Frames are 2-D float arrays with dimensions that are multiples of the
block size.
"""

from __future__ import annotations

import numpy as np
from scipy import fft as sfft

BLOCK = 8  # pixels per block edge


def _check_frame(frame: np.ndarray) -> np.ndarray:
    frame = np.asarray(frame, dtype=np.float64)
    if frame.ndim != 2 or frame.shape[0] % BLOCK or frame.shape[1] % BLOCK:
        raise ValueError(
            f"frame shape {frame.shape} must be 2-D with multiples of {BLOCK}"
        )
    return frame


def block_count(frame: np.ndarray) -> int:
    """Macroblocks per frame — the parametric rate `p` of the decoder."""
    frame = _check_frame(frame)
    return (frame.shape[0] // BLOCK) * (frame.shape[1] // BLOCK)


def split_blocks(frame: np.ndarray) -> list[np.ndarray]:
    """Row-major list of 8x8 blocks."""
    frame = _check_frame(frame)
    rows, cols = frame.shape[0] // BLOCK, frame.shape[1] // BLOCK
    return [
        frame[r * BLOCK:(r + 1) * BLOCK, c * BLOCK:(c + 1) * BLOCK].copy()
        for r in range(rows)
        for c in range(cols)
    ]


def join_blocks(blocks: list[np.ndarray], shape: tuple[int, int]) -> np.ndarray:
    """Inverse of :func:`split_blocks`."""
    rows, cols = shape[0] // BLOCK, shape[1] // BLOCK
    if len(blocks) != rows * cols:
        raise ValueError(f"{len(blocks)} blocks cannot tile shape {shape}")
    frame = np.empty(shape, dtype=np.float64)
    for index, block in enumerate(blocks):
        r, c = divmod(index, cols)
        frame[r * BLOCK:(r + 1) * BLOCK, c * BLOCK:(c + 1) * BLOCK] = block
    return frame


def dct_block(block: np.ndarray) -> np.ndarray:
    """Orthonormal 2-D DCT of one block."""
    return sfft.dctn(block, norm="ortho")


def idct_block(coeffs: np.ndarray) -> np.ndarray:
    """Inverse of :func:`dct_block`."""
    return sfft.idctn(coeffs, norm="ortho")


def quantize(coeffs: np.ndarray, step: float = 1.0) -> np.ndarray:
    """Uniform quantization to integer levels."""
    if step <= 0:
        raise ValueError("quantization step must be positive")
    return np.round(coeffs / step)


def dequantize(levels: np.ndarray, step: float = 1.0) -> np.ndarray:
    return np.asarray(levels, dtype=np.float64) * step


def sad(a: np.ndarray, b: np.ndarray) -> float:
    """Sum of absolute differences — the ME matching metric."""
    return float(np.abs(np.asarray(a, float) - np.asarray(b, float)).sum())


def _block_at(frame: np.ndarray, top: int, left: int) -> np.ndarray | None:
    if top < 0 or left < 0:
        return None
    if top + BLOCK > frame.shape[0] or left + BLOCK > frame.shape[1]:
        return None
    return frame[top:top + BLOCK, left:left + BLOCK]


def motion_search_zero(reference, current, top, left, radius=0):
    """Zero-MV 'search': the cheapest, lowest-quality strategy."""
    candidate = _block_at(reference, top, left)
    assert candidate is not None
    return (0, 0), sad(candidate, current)


def motion_search_full(reference, current, top, left, radius: int = 4):
    """Exhaustive search in a (2r+1)^2 window — the best, costliest."""
    best_mv, best_cost = (0, 0), float("inf")
    for dy in range(-radius, radius + 1):
        for dx in range(-radius, radius + 1):
            candidate = _block_at(reference, top + dy, left + dx)
            if candidate is None:
                continue
            cost = sad(candidate, current)
            if cost < best_cost:
                best_mv, best_cost = (dy, dx), cost
    return best_mv, best_cost


def motion_search_threestep(reference, current, top, left, radius: int = 4):
    """Classic three-step search: logarithmic probe refinement."""
    centre = (0, 0)
    step = max(1, radius // 2)
    best_cost = sad(_block_at(reference, top, left), current)
    while step >= 1:
        improved = True
        while improved:
            improved = False
            for dy in (-step, 0, step):
                for dx in (-step, 0, step):
                    mv = (centre[0] + dy, centre[1] + dx)
                    if max(abs(mv[0]), abs(mv[1])) > radius:
                        continue
                    candidate = _block_at(reference, top + mv[0], left + mv[1])
                    if candidate is None:
                        continue
                    cost = sad(candidate, current)
                    if cost < best_cost:
                        centre, best_cost = mv, cost
                        improved = True
        step //= 2
    return centre, best_cost


MOTION_SEARCHES = {
    "zero": motion_search_zero,
    "threestep": motion_search_threestep,
    "full": motion_search_full,
}

#: Relative model cost per macroblock of each strategy (probe counts:
#: 1, ~25, (2*4+1)^2 = 81) — used by the deadline experiment.
SEARCH_COST = {"zero": 1.0, "threestep": 25.0, "full": 81.0}

#: Quality ordering for the Transaction's priorities (higher = better).
SEARCH_QUALITY = {"zero": 0, "threestep": 1, "full": 2}


def synthetic_video(
    frames: int = 4,
    height: int = 32,
    width: int = 32,
    motion: tuple[int, int] = (1, 2),
    seed: int = 0,
) -> list[np.ndarray]:
    """A deterministic test sequence: a textured patch translating by
    ``motion`` pixels per frame over a static background."""
    rng = np.random.default_rng(seed)
    background = rng.uniform(32.0, 64.0, (height, width))
    texture = rng.uniform(128.0, 255.0, (height // 2, width // 2))
    out = []
    for t in range(frames):
        frame = background.copy()
        top = (4 + t * motion[0]) % (height // 2)
        left = (4 + t * motion[1]) % (width // 2)
        frame[top:top + height // 2, left:left + width // 2] = texture
        out.append(frame)
    return out
