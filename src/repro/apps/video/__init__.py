"""VC-1-style decoder and AVC-style motion search (EXT1, Sec. V)."""

from .blocks import (
    BLOCK,
    MOTION_SEARCHES,
    SEARCH_COST,
    SEARCH_QUALITY,
    block_count,
    dct_block,
    dequantize,
    idct_block,
    join_blocks,
    motion_search_full,
    motion_search_threestep,
    motion_search_zero,
    quantize,
    sad,
    split_blocks,
    synthetic_video,
)
from .decoder import (
    DecodeResult,
    P,
    build_decoder_graph,
    encode_sequence,
    run_decoder,
)
from .motion import (
    MotionExperiment,
    build_motion_graph,
    run_motion_experiment,
)

__all__ = [
    "BLOCK",
    "split_blocks",
    "join_blocks",
    "block_count",
    "dct_block",
    "idct_block",
    "quantize",
    "dequantize",
    "sad",
    "motion_search_zero",
    "motion_search_threestep",
    "motion_search_full",
    "MOTION_SEARCHES",
    "SEARCH_COST",
    "SEARCH_QUALITY",
    "synthetic_video",
    "P",
    "build_decoder_graph",
    "encode_sequence",
    "run_decoder",
    "DecodeResult",
    "MotionExperiment",
    "build_motion_graph",
    "run_motion_experiment",
]
