"""Lock-step K-run batched execution of the array-state backend.

The arrays backend of :mod:`repro.csdf.statearrays` vectorized the
*state* of one run; the heaviest workloads — buffer-search probes,
per-binding parametric evaluation, batch corpora — are many
*independent runs of the same template*.  This module clones K run
states from one memoized :class:`~repro.csdf.statearrays.ArrayState`
template into ``(K, n)`` / ``(K, nchan)`` numpy planes and steps all K
runs **lock-step**: every wavefront processes exactly one completion
event per still-active run, then drains every newly startable firing,
all in vectorized rounds over flat index arrays.  Runs that diverge in
time simply carry different ``now`` clocks; runs that deadlock (or
finish early) drop out of the batch without stalling the rest.

Bit-for-bit contract
--------------------
``self_timed_execution_batch`` returns, for each run, **exactly** what
``self_timed_execution(..., backend="arrays")`` returns (or raises) for
the same graph / bindings / iterations / capacities: every float of the
``TimedResult``, every peak, and every deadlock blocked set.  The
replay argument (pinned by ``tests/csdf/test_batchexec.py`` over the
differential corpus):

* with an unbounded core budget, starting one actor can never *unready*
  a different actor (each channel has a single producer and a single
  consumer, and a start only touches the starter's own constraint
  bits), so the set of firings started after an event is a least
  fixpoint — independent of start order;
* the scalar drain starts that fixpoint in **waves**, each scanned in
  ascending actor position; a producer woken mid-wave (a consumer freed
  capacity headroom) joins the *current* wave exactly when its position
  is past the position of the consumer that cleared its last blocked
  constraint (the scalar ``insort`` ahead-of-cursor rule), otherwise it
  seeds the next wave;
* event sequence numbers are assigned in start order, so within a wave
  they are the ascending-position rank — which is what makes the
  ``(time, seq)`` event pop order reproducible without a per-run heap.

Only ``cores=None`` is supported: a core budget makes start order
depend on a global scan cursor that has no batched equivalent, and
every batched workload (probes, parametric sweeps) runs unbounded.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..errors import DeadlockError
from .graph import CSDFGraph
from .statearrays import _UNCAPPED, ArrayState, array_state

__all__ = ["BatchTables", "batch_tables", "self_timed_execution_batch"]

#: Sentinel for "no candidate" in the per-wavefront event selection.
_NO_SEQ = np.iinfo(np.int64).max


class BatchTables:
    """Batch-shaped companion tables of one :class:`ArrayState`.

    The scalar kernel walks per-actor Python edge tuples; the batched
    kernel needs the same adjacency as flat CSR arrays so a round's
    ragged gathers (`out channels of these K actors`) are pure numpy.

    ``out_base/out_cnt`` + ``out_slots``
        channel slots grouped by producer position (scan order);
    ``in_base/in_cnt`` + ``in_slots``
        channel slots grouped by consumer position;
    ``exec_base/exec_len`` + ``exec_flat``
        execution-time phases, CSR over actor positions;
    ``floor``
        the per-channel *capacity floor*: ``max(initial tokens, max
        consumption phase, max production phase)`` — any capacity below
        it is provably infeasible (see
        :func:`repro.csdf.throughput.capacity_floors`).
    """

    __slots__ = ("out_base", "out_cnt", "out_slots",
                 "in_base", "in_cnt", "in_slots",
                 "in_red", "out_red", "in_empty", "out_empty",
                 "self_slots",
                 "exec_base", "exec_len", "exec_flat", "floor")

    def __init__(self, state: ArrayState):
        n, nchan = state.n, state.nchan
        slots = np.arange(nchan, dtype=np.int64)
        src_order = np.argsort(state.chan_src, kind="stable")
        dst_order = np.argsort(state.chan_dst, kind="stable")
        self.out_slots = slots[src_order]
        self.in_slots = slots[dst_order]
        self.out_cnt = np.bincount(state.chan_src, minlength=n).astype(np.int64)
        self.in_cnt = np.bincount(state.chan_dst, minlength=n).astype(np.int64)
        self.out_base = np.zeros(n, dtype=np.int64)
        self.in_base = np.zeros(n, dtype=np.int64)
        if n > 1:
            self.out_base[1:] = np.cumsum(self.out_cnt[:-1])
            self.in_base[1:] = np.cumsum(self.in_cnt[:-1])
        # reduceat-safe segment starts (an empty trailing segment would
        # index one past the slot table) plus the empty-segment masks —
        # reduceat yields a[base[i]] for base[i] == base[i+1], which the
        # caller overwrites with the identity via these masks.
        if nchan:
            self.in_red = np.minimum(self.in_base, nchan - 1)
            self.out_red = np.minimum(self.out_base, nchan - 1)
        else:
            self.in_red = self.in_base
            self.out_red = self.out_base
        self.in_empty = self.in_cnt == 0
        self.out_empty = self.out_cnt == 0
        self.self_slots = np.flatnonzero(state.self_loop)

        base, length, flat = [], [], []
        for phases in state.exec_phases:
            base.append(len(flat))
            length.append(len(phases))
            flat.extend(phases)
        self.exec_base = np.asarray(base, dtype=np.int64)
        self.exec_len = np.asarray(length, dtype=np.int64)
        self.exec_flat = np.asarray(flat, dtype=np.float64)

        floor = state.tokens0.copy()
        for s in range(nchan):
            cons = state.cons_flat[state.cons_base[s]:
                                   state.cons_base[s] + state.cons_len[s]]
            prod = state.prod_flat[state.prod_base[s]:
                                   state.prod_base[s] + state.prod_len[s]]
            if len(cons):
                floor[s] = max(floor[s], int(cons.max()))
            if len(prod):
                floor[s] = max(floor[s], int(prod.max()))
        self.floor = floor


def batch_tables(state: ArrayState) -> BatchTables:
    """The (lazily built, template-cached) :class:`BatchTables` of a
    memoized template — one build per (graph version, bindings), like
    the template itself."""
    tables = state.batch
    if tables is None:
        tables = BatchTables(state)
        state.batch = tables
    return tables


def _ragged_arange(counts: np.ndarray) -> np.ndarray:
    """``[0..c0), [0..c1), ...`` concatenated — the offset pattern for
    CSR expansion."""
    total = int(counts.sum())
    if not total:
        return np.zeros(0, dtype=np.int64)
    ends = np.cumsum(counts)
    return np.arange(total, dtype=np.int64) - np.repeat(ends - counts, counts)


class _BatchState:
    """The mutable (K, n)/(K, nchan) planes of one lock-step batch."""

    def __init__(self, state: ArrayState, tables: BatchTables,
                 caps_rows: np.ndarray, exec_rows: np.ndarray,
                 iterations: int):
        k = len(caps_rows)
        n, nchan = state.n, state.nchan
        self.k, self.n, self.nchan = k, n, nchan
        self.state, self.tables = state, tables
        self.iterations = iterations
        self.qv = state.qv_np
        self.targets = self.qv * iterations

        self.tokens = np.repeat(state.tokens0[None, :], k, axis=0)
        self.peaks = self.tokens.copy()
        self.reserved = np.zeros((k, nchan), dtype=np.int64)
        self.caps = caps_rows                      # (k, nchan), -1 = unbounded
        self.capped = caps_rows != _UNCAPPED       # static per batch
        self.any_capped = bool(self.capped.any())
        self.exec_flat = exec_rows                 # (k, len(exec_flat))

        # Incremental next-phase planes: ``need[r, s]`` / ``give[r, s]``
        # are the consumption / production of channel ``s``'s *next*
        # consumer / producer firing in run ``r``.  They only change when
        # the owning actor starts, so `start` patches just the touched
        # slots and the per-wavefront readiness test is pure arithmetic
        # on resident planes instead of a full phase-table gather.
        if nchan:
            self.need = np.repeat(
                state.cons_flat[state.cons_base][None, :], k, axis=0)
            self.give = np.repeat(
                state.prod_flat[state.prod_base][None, :], k, axis=0)
        else:
            self.need = np.zeros((k, 0), dtype=np.int64)
            self.give = np.zeros((k, 0), dtype=np.int64)

        self.started = np.zeros((k, n), dtype=np.int64)
        self.completed = np.zeros((k, n), dtype=np.int64)
        self.busy = np.zeros((k, n), dtype=bool)
        self.comp_time = np.full((k, n), np.inf)
        self.comp_seq = np.full((k, n), _NO_SEQ, dtype=np.int64)

        self.now = np.zeros(k)
        self.seq = np.zeros(k, dtype=np.int64)
        self.firings = np.zeros(k, dtype=np.int64)
        self.active = np.ones(k, dtype=bool)

        self.it_target = np.ones(k, dtype=np.int64)
        self.short = np.full(k, int((self.qv > 0).sum()), dtype=np.int64)
        self.ends: list[list[float]] = [[] for _ in range(k)]

    # -- vectorized firing rule over a row subset ------------------------
    def _reduce_in(self, mask: np.ndarray) -> np.ndarray:
        """AND of a (rows, nchan) channel mask over each actor's *in*
        channels -> (rows, n); channel-less actors reduce to True."""
        t = self.tables
        if not self.nchan:
            return np.ones((len(mask), self.n), dtype=bool)
        red = np.bitwise_and.reduceat(mask[:, t.in_slots], t.in_red, axis=1)
        red[:, t.in_empty] = True
        return red

    def _reduce_out(self, mask: np.ndarray) -> np.ndarray:
        """Same reduction over each actor's *out* channels."""
        t = self.tables
        if not self.nchan:
            return np.ones((len(mask), self.n), dtype=bool)
        red = np.bitwise_and.reduceat(mask[:, t.out_slots], t.out_red, axis=1)
        red[:, t.out_empty] = True
        return red

    def eligible(self, rows: np.ndarray) -> np.ndarray:
        """``can_start`` of every actor for the runs in ``rows``:
        (len(rows), n) bool — data-ready, capacity-ready, idle, and
        short of its firing target (the scalar seeding condition)."""
        ready = self._reduce_in(self.tokens[rows] >= self.need[rows])
        if self.any_capped:
            ready &= self._reduce_out(~self._cap_blocked(rows))
        return (ready & ~self.busy[rows]
                & (self.started[rows] < self.targets[None, :]))

    def _cap_blocked(self, rows: np.ndarray) -> np.ndarray:
        """(len(rows), nchan) bool: capacity constraint of each
        channel's *next* producer firing currently violated."""
        t = self.tables
        occupancy = (self.tokens[rows] + self.reserved[rows]
                     + self.give[rows])
        if len(t.self_slots):
            occupancy[np.ix_(np.arange(len(rows)), t.self_slots)] -= \
                self.need[np.ix_(rows, t.self_slots)]
        return self.capped[rows] & (occupancy > self.caps[rows])

    # -- ragged CSR expansion over (run, actor) pairs --------------------
    def _expand(self, rows, poss, base, cnt, slot_table):
        counts = cnt[poss]
        rr = np.repeat(rows, counts)
        idx = np.repeat(base[poss], counts) + _ragged_arange(counts)
        return rr, slot_table[idx], np.repeat(poss, counts), counts

    def start(self, rows: np.ndarray, poss: np.ndarray) -> None:
        """Consume + reserve for the firings ``started[rows, poss]`` —
        the start half of the scalar loop, minus event scheduling
        (sequence numbers are assigned per wave, see the module
        docstring)."""
        st, t = self.state, self.tables
        nf = self.started[rows, poss]
        rr, ss, pp, counts = self._expand(rows, poss, t.in_base, t.in_cnt,
                                          t.in_slots)
        if len(rr):
            self.tokens[rr, ss] -= self.need[rr, ss]
            nxt = np.repeat(nf, counts) + 1
            self.need[rr, ss] = st.cons_flat[st.cons_base[ss]
                                             + nxt % st.cons_len[ss]]
        rr, ss, pp, counts = self._expand(rows, poss, t.out_base, t.out_cnt,
                                          t.out_slots)
        if len(rr):
            self.reserved[rr, ss] += self.give[rr, ss]
            nxt = np.repeat(nf, counts) + 1
            self.give[rr, ss] = st.prod_flat[st.prod_base[ss]
                                             + nxt % st.prod_len[ss]]
        self.started[rows, poss] = nf + 1
        self.busy[rows, poss] = True

    def produce(self, rows: np.ndarray, poss: np.ndarray) -> None:
        """The completion half: release production (and its capacity
        reservation) onto the out channels, tracking peaks."""
        st, t = self.state, self.tables
        nf = self.completed[rows, poss]
        rr, ss, pp, counts = self._expand(rows, poss, t.out_base, t.out_cnt,
                                          t.out_slots)
        if len(rr):
            nfr = np.repeat(nf, counts)
            give = st.prod_flat[st.prod_base[ss] + nfr % st.prod_len[ss]]
            level = self.tokens[rr, ss] + give
            self.tokens[rr, ss] = level
            self.reserved[rr, ss] -= give
            self.peaks[rr, ss] = np.maximum(self.peaks[rr, ss], level)


def _drain(bs: _BatchState, rows: np.ndarray) -> None:
    """Start every firing the scalar drain would start for the runs in
    ``rows``, with the scalar's exact start order (see module
    docstring), assigning sequence numbers and completion events."""
    st = bs.state
    positions = np.arange(bs.n, dtype=np.int64)[None, :]
    sub = bs.eligible(rows)                      # wave-1 candidates
    if not bs.any_capped:
        # Unconstrained runs have no capacity wakes, and a start can
        # only *consume* tokens — nothing becomes data-ready mid-drain.
        # One wave, one round, one ascending-position scan.
        if sub.any():
            r, p = np.nonzero(sub)
            bs.start(rows[r], p)
            _schedule_wave(bs, rows, sub)
        return
    while sub.any():
        # ---- one wave: round 0 = entering candidates, later rounds =
        # producers woken ahead of the scan cursor ----
        entry_blocked = bs._cap_blocked(rows)
        wave = np.zeros_like(sub)
        clearpos = np.full(sub.shape, -1, dtype=np.int64)
        round_set = sub
        next_sub = np.zeros_like(sub)
        while round_set.any():
            r, p = np.nonzero(round_set)
            bs.start(rows[r], p)
            wave |= round_set
            # Which capacity constraints cleared this wave, and at what
            # scan position?  A constraint bit can only flip *set*
            # during a drain when its channel's consumer starts (a
            # consumption lowers occupancy), so the scan position of
            # the flipped channel's consumer is the clearer position —
            # and the wave starts in ascending position order, so the
            # running max over a producer's flipped channels is exactly
            # the scalar loop's "final clearer", whose position decides
            # ahead-of-cursor insertion.
            round_set = np.zeros_like(sub)
            cleared = entry_blocked & ~bs._cap_blocked(rows)
            if cleared.any():
                cr, cc = np.nonzero(cleared)
                np.maximum.at(clearpos, (cr, st.chan_src[cc]),
                              st.chan_dst[cc])
                woken = bs.eligible(rows) & ~wave
                if woken.any():
                    ahead = positions > clearpos
                    round_set = woken & ahead & ~next_sub  # joins wave
                    next_sub |= woken & ~ahead             # next wave
        # ---- wave complete: sequence = ascending-position rank ----
        _schedule_wave(bs, rows, wave)
        sub = next_sub
        # (nothing can go stale between waves: during a drain the
        # constraint bits of idle actors are monotone non-decreasing.)


def _schedule_wave(bs: _BatchState, rows: np.ndarray,
                   wave: np.ndarray) -> None:
    """Assign the (time, seq) completion events of one start wave —
    sequence numbers are the ascending-position ranks within the wave
    (the scalar start order, see module docstring)."""
    ranks = np.cumsum(wave, axis=1) - 1
    wr, wp = np.nonzero(wave)
    grows = rows[wr]
    nf = bs.started[grows, wp] - 1
    t = bs.tables
    dur = bs.exec_flat[grows, t.exec_base[wp] + nf % t.exec_len[wp]]
    bs.comp_time[grows, wp] = bs.now[grows] + dur
    bs.comp_seq[grows, wp] = bs.seq[grows] + ranks[wr, wp]
    bs.seq[rows] += wave.sum(axis=1)


def _finish_run(bs: _BatchState, r: int):
    """TimedResult or DeadlockError for a quiescent run (mirrors the
    scalar epilogue exactly, message included)."""
    from .throughput import TimedResult

    if (bs.completed[r] < bs.targets).any():
        order = bs.state.order
        blocked = [order[i] for i in range(bs.n)
                   if bs.completed[r, i] < bs.targets[i]]
        return DeadlockError(
            f"self-timed execution stalled after {int(bs.firings[r])} "
            "firings",
            blocked=blocked,
        )
    return TimedResult(
        makespan=float(bs.now[r]),
        iterations=bs.iterations,
        firings=int(bs.firings[r]),
        iteration_ends=bs.ends[r],
        peaks=dict(zip(bs.state.channel_names,
                       bs.peaks[r].tolist())),
    )


def _caps_row(state: ArrayState, capacities: Mapping[str, int] | None,
              graph: CSDFGraph) -> np.ndarray:
    from .throughput import validate_capacities

    row = np.full(state.nchan, _UNCAPPED, dtype=np.int64)
    if capacities:
        validate_capacities(graph, capacities)
        caps_map = dict(capacities)
        for slot, name in enumerate(state.channel_names):
            value = caps_map.get(name)
            if value is not None:
                row[slot] = value
    return row


def self_timed_execution_batch(
    graph: CSDFGraph,
    bindings: Mapping | None = None,
    iterations: int = 1,
    capacities_list: Sequence[Mapping[str, int] | None] = (None,),
    cores: int | None = None,
    stats: dict | None = None,
):
    """Run K self-timed executions of one graph lock-step.

    Each entry of ``capacities_list`` is one run's capacity vector
    (``None`` = unconstrained).  Returns a list of per-run outcomes in
    input order: a :class:`~repro.csdf.throughput.TimedResult`, or the
    :class:`~repro.errors.DeadlockError` *instance* the sequential
    backend would have raised (returned, not raised, so one deadlocked
    run does not poison the batch).  Every outcome is bit-for-bit what
    ``self_timed_execution(..., backend="arrays")`` produces for the
    same run.

    ``stats``, when given a dict, receives ``events`` (total firings
    across the batch), ``wavefronts`` (lock-step rounds executed) and
    ``runs``.  Only ``cores=None`` is supported — see the module
    docstring.
    """
    if iterations < 1:
        raise ValueError("need at least one iteration")
    if cores is not None:
        raise ValueError(
            "batched execution supports cores=None only (a core budget "
            "serializes starts through a global scan cursor that has no "
            "lock-step equivalent)")
    state = array_state(graph, bindings)
    tables = batch_tables(state)
    k = len(capacities_list)
    outcomes: list = [None] * k

    # Per-run capacity rows; runs violating the initial-tokens contract
    # resolve immediately (the same up-front DeadlockError the scalar
    # backends raise) and never enter the planes.
    caps_rows = []
    live = []
    for i, capacities in enumerate(capacities_list):
        row = _caps_row(state, capacities, graph)
        bad = (row != _UNCAPPED) & (row < state.tokens0)
        if bad.any():
            from .throughput import _initial_fit_error

            outcomes[i] = _initial_fit_error(
                [state.channel_names[s] for s in np.flatnonzero(bad)],
                list(state.order))
        else:
            caps_rows.append(row)
            live.append(i)
    if stats is not None:
        stats["runs"] = k
        stats["wavefronts"] = 0
        stats["events"] = 0
    if not live:
        return outcomes

    exec_rows = np.repeat(tables.exec_flat[None, :], len(live), axis=0)
    bs = _BatchState(state, tables,
                     np.stack(caps_rows), exec_rows, iterations)

    rows_all = np.arange(len(live), dtype=np.int64)
    _drain(bs, rows_all)
    wavefronts = 0
    while True:
        rows = np.flatnonzero(bs.active)
        if not len(rows):
            break
        # ---- next completion event per run: lexicographic (time, seq)
        times = bs.comp_time[rows]
        tmin = times.min(axis=1)
        quiet = ~np.isfinite(tmin)
        if quiet.any():
            for r in rows[quiet]:
                outcomes[live[r]] = _finish_run(bs, int(r))
            bs.active[rows[quiet]] = False
            rows = rows[~quiet]
            if not len(rows):
                continue
            times = times[~quiet]
            tmin = tmin[~quiet]
        seqs = np.where(times == tmin[:, None], bs.comp_seq[rows], _NO_SEQ)
        poss = np.argmin(seqs, axis=1)
        wavefronts += 1

        bs.now[rows] = tmin
        bs.produce(rows, poss)
        done = bs.completed[rows, poss] + 1
        bs.completed[rows, poss] = done
        bs.busy[rows, poss] = False
        bs.comp_time[rows, poss] = np.inf
        bs.comp_seq[rows, poss] = _NO_SEQ
        bs.firings[rows] += 1

        # ---- iteration boundaries (rare: iterations × K hits total) ----
        boundary = done == bs.qv[poss] * bs.it_target[rows]
        for ri in np.flatnonzero(boundary):
            r = int(rows[ri])
            bs.short[r] -= 1
            while bs.short[r] == 0:
                bs.ends[r].append(float(bs.now[r]))
                bs.it_target[r] += 1
                bs.short[r] = int(
                    (bs.completed[r] < bs.qv * bs.it_target[r]).sum())
                if bs.it_target[r] > iterations:
                    break

        _drain(bs, rows)

    if stats is not None:
        stats["wavefronts"] = wavefronts
        stats["events"] = int(bs.firings.sum())
    return outcomes
