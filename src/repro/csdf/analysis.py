"""CSDF consistency analysis (Theorem 1 of the paper).

Computes the topology matrix ``Gamma``, the base solution ``r`` of
``Gamma . r = 0`` and the repetition vector ``q = P . r`` where ``P``
is the diagonal matrix of cycle lengths ``tau_j``.  All quantities are
symbolic (:class:`~repro.symbolic.poly.Poly`), so the same code handles
plain CSDF (Fig. 1: ``q = [3, 2, 2]``) and parameterized graphs
(Fig. 2: ``q = [2, 2p, p, p, 2p, 2p]``).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Mapping

from ..cache import bindings_key, cached, register_binding_insensitive
from ..errors import AnalysisError
from ..symbolic import InconsistentRatesError, Poly, solve_balance
from .graph import CSDFGraph

# The rate algebra ignores execution times entirely, so its memoized
# products survive binding-only version bumps (see repro.cache).
register_binding_insensitive("base_solution")
register_binding_insensitive("repetition_vector")
register_binding_insensitive("concrete_q")


def topology_matrix(graph: CSDFGraph) -> tuple[list[str], list[str], list[list[Poly]]]:
    """The topology matrix ``Gamma`` (Equation 3).

    Returns ``(channel_names, actor_names, rows)`` where
    ``rows[u][j]`` is ``X_j(tau_j)`` if actor ``j`` produces on channel
    ``u``, ``-Y_j(tau_j)`` if it consumes from it, and 0 otherwise.
    Self-loop channels contribute the net total production minus
    consumption.
    """
    actor_names = graph.actor_names()
    index = {name: j for j, name in enumerate(actor_names)}
    channel_names: list[str] = []
    rows: list[list[Poly]] = []
    for channel in graph.channels.values():
        row = [Poly() for _ in actor_names]
        tau_src = graph.tau(channel.src)
        tau_dst = graph.tau(channel.dst)
        row[index[channel.src]] = row[index[channel.src]] + channel.production.cumulative(tau_src)
        row[index[channel.dst]] = row[index[channel.dst]] - channel.consumption.cumulative(tau_dst)
        channel_names.append(channel.name)
        rows.append(row)
    return channel_names, actor_names, rows


def base_solution(graph: CSDFGraph) -> dict[str, Poly]:
    """Minimal positive integer solution ``r`` of the balance equations.

    Raises :class:`~repro.symbolic.InconsistentRatesError` when only the
    trivial solution exists (graph not consistent).  Memoized per graph
    version (the solve dominates the whole analysis chain's cost).
    """
    return cached(graph, ("base_solution",), lambda: _base_solution(graph))


def _base_solution(graph: CSDFGraph) -> dict[str, Poly]:
    if not graph.actors:
        return {}
    edges = []
    for channel in graph.channels.values():
        if channel.is_selfloop():
            # A self-loop constrains nothing across actors but must be
            # internally balanced over one cycle, otherwise tokens
            # accumulate or drain without bound.
            tau = graph.tau(channel.src)
            produced = channel.production.cumulative(tau)
            consumed = channel.consumption.cumulative(tau)
            if produced != consumed:
                raise InconsistentRatesError(
                    f"self-loop {channel.name!r} on {channel.src!r} is "
                    f"unbalanced: produces {produced}, consumes {consumed} per cycle"
                )
            continue
        tau_src = graph.tau(channel.src)
        tau_dst = graph.tau(channel.dst)
        edges.append(
            (
                channel.src,
                channel.dst,
                channel.production.cumulative(tau_src),
                channel.consumption.cumulative(tau_dst),
            )
        )
    return solve_balance(graph.actor_names(), edges)


def repetition_vector(graph: CSDFGraph) -> dict[str, Poly]:
    """The repetition vector ``q = P . r`` (Theorem 1).

    ``q_j = tau_j * r_j`` counts actor firings per graph iteration.
    """
    return cached(
        graph, ("repetition_vector",),
        lambda: {
            name: Poly.const(graph.tau(name)) * poly
            for name, poly in base_solution(graph).items()
        },
    )


def is_consistent(graph: CSDFGraph) -> bool:
    """True when a non-trivial repetition vector exists."""
    try:
        base_solution(graph)
    except InconsistentRatesError:
        return False
    return True


def concrete_repetition_vector(graph: CSDFGraph, bindings: Mapping | None = None) -> dict[str, int]:
    """Repetition vector evaluated to integers under ``bindings``.

    Verifies the result is strictly positive and integral — a
    repetition count like ``p/2`` means the parameter valuation is
    incompatible with one atomic graph iteration.
    """
    return cached(
        graph, ("concrete_q", bindings_key(bindings)),
        lambda: _concrete_repetition_vector(graph, bindings),
    )


def _concrete_repetition_vector(graph: CSDFGraph, bindings: Mapping | None) -> dict[str, int]:
    q = repetition_vector(graph)
    out: dict[str, int] = {}
    for name, poly in q.items():
        value = poly.evaluate(bindings or {})
        if value.denominator != 1:
            raise AnalysisError(
                f"repetition count of {name!r} is {value} under {bindings}: "
                f"not an integer (choose parameter values divisible by the "
                f"normalization factor)"
            )
        if value <= 0:
            raise AnalysisError(f"repetition count of {name!r} is non-positive: {value}")
        out[name] = int(value)
    return out


def iteration_token_totals(graph: CSDFGraph, bindings: Mapping | None = None) -> dict[str, Fraction]:
    """Tokens crossing each channel during one full iteration.

    Sanity view used by tests: for a consistent graph, production and
    consumption totals match on every channel.
    """
    q = concrete_repetition_vector(graph, bindings)
    totals: dict[str, Fraction] = {}
    for channel in graph.channels.values():
        produced = channel.production.bind(bindings or {}).cumulative(q[channel.src])
        totals[channel.name] = produced.evaluate({})
    return totals
