"""SDF helpers and the exact CSDF -> HSDF expansion.

Synchronous Dataflow (Lee & Messerschmitt 1987) is the single-phase
special case of CSDF; the paper builds on CSDF precisely because it
generalizes SDF while staying decidable.  This module provides:

* :func:`is_sdf` — does a graph use only single-phase rates?
* :func:`expand_to_hsdf` — the classic exact transformation of a
  (concrete) CSDF graph into *homogeneous* SDF: one actor per firing
  of the repetition vector, token flows routed by interval overlap in
  the steady-state FIFO stream, iteration-crossing flows encoded as
  initial tokens.  Every counting/ordering analysis (consistency,
  liveness, self-timed schedules) is preserved, which makes the
  expansion a powerful independent oracle for the rest of the library.

Construction (Sriram & Bhattacharyya's standard formulation): for a
channel ``a -> b`` with cumulative production ``X``, cumulative
consumption ``Y``, ``d`` initial tokens and per-iteration total ``T``:
producer firing ``k`` (1-based, iteration 0) emits token indices
``[X(k-1), X(k))``; consumer firing ``m`` of iteration ``delta``
absorbs indices ``[delta*T + Y(m-1) - d, delta*T + Y(m) - d)``.  Each
non-empty intersection of size ``c`` becomes an HSDF edge
``a_k -> b_m`` with rate ``c``/``c`` and ``delta*c`` initial tokens.
"""

from __future__ import annotations

from typing import Mapping

from ..cache import bindings_key, cached
from ..errors import GraphConstructionError
from .analysis import concrete_repetition_vector
from .graph import CSDFGraph


def is_sdf(graph: CSDFGraph) -> bool:
    """True when every rate sequence has a single phase."""
    return all(
        len(channel.production) == 1 and len(channel.consumption) == 1
        for channel in graph.channels.values()
    ) and all(graph.tau(name) == 1 for name in graph.actors)


def firing_name(actor: str, firing: int) -> str:
    """Name of the HSDF actor for the k-th firing (1-based)."""
    return f"{actor}#{firing}"


def channel_firing_flows(channel, q_src: int, q_dst: int,
                         bindings: Mapping | None = None):
    """Exact token flows of one channel between individual firings.

    Yields ``(k, m, delta, count)``: producer firing ``k`` (1-based)
    hands ``count`` tokens to consumer firing ``m`` of ``delta``
    iterations later — the interval-overlap construction documented in
    the module header, parameterized by the repetition counts so both
    the full HSDF expansion and the parametric engine's cyclic-core
    builder (:mod:`repro.csdf.parametric`, which passes the *global*
    counts restricted to the core) share one implementation.
    """
    production = channel.production.bind(bindings or {})
    consumption = channel.consumption.bind(bindings or {})
    d = channel.initial_tokens
    produced_cum = [int(production.cumulative(k).const_value())
                    for k in range(q_src + 1)]
    consumed_cum = [int(consumption.cumulative(m).const_value())
                    for m in range(q_dst + 1)]
    total = produced_cum[-1]
    if total != consumed_cum[-1]:
        raise GraphConstructionError(
            f"channel {channel.name!r} moves {produced_cum[-1]} vs "
            f"{consumed_cum[-1]} tokens per iteration: not consistent"
        )
    if total == 0:
        return
    max_delta = (d + total) // total + 1
    for k in range(1, q_src + 1):
        p_lo, p_hi = produced_cum[k - 1], produced_cum[k]
        if p_lo == p_hi:
            continue
        for delta in range(0, max_delta + 1):
            base = delta * total - d
            for m in range(1, q_dst + 1):
                c_lo, c_hi = base + consumed_cum[m - 1], base + consumed_cum[m]
                count = min(p_hi, c_hi) - max(p_lo, c_lo)
                if count > 0:
                    yield k, m, delta, count


def expand_to_hsdf(graph: CSDFGraph, bindings: Mapping | None = None) -> CSDFGraph:
    """Expand a concrete CSDF graph into homogeneous SDF.

    Every actor ``a`` becomes ``q_a`` single-firing actors chained by a
    serialization ring (one initial token entering ``a#1``), so each
    HSDF actor fires exactly once per graph iteration; channels are
    split per (producer firing, consumer firing, iteration distance)
    with exact token counts.

    The expansion is memoized per graph version and shared between the
    MCR and scheduling analyses — the returned graph is *frozen*:
    ``add_actor``/``add_channel`` on it raise.
    """
    return cached(
        graph, ("hsdf", bindings_key(bindings)),
        lambda: _expand_to_hsdf(graph, bindings),
    )


def _expand_to_hsdf(graph: CSDFGraph, bindings: Mapping | None) -> CSDFGraph:
    for name in graph.actors:
        if "#" in name:
            raise GraphConstructionError(
                f"actor {name!r} contains the reserved separator '#'"
            )
    q = concrete_repetition_vector(graph, bindings)
    expanded = CSDFGraph(f"{graph.name}/hsdf")

    for name, count in q.items():
        actor = graph.actor(name)
        for k in range(1, count + 1):
            expanded.add_actor(firing_name(name, k), exec_time=actor.exec_time(k - 1))
        if count > 1:
            # Serialize the firings of one actor (no auto-concurrency):
            # a ring a#1 -> a#2 -> ... -> a#q -> a#1 with the token
            # initially ready for a#1.
            for k in range(1, count + 1):
                nxt = k % count + 1
                expanded.add_channel(
                    f"ring_{name}_{k}",
                    firing_name(name, k),
                    firing_name(name, nxt),
                    production=1,
                    consumption=1,
                    initial_tokens=1 if nxt == 1 else 0,
                )

    for channel in graph.channels.values():
        flows = channel_firing_flows(
            channel, q[channel.src], q[channel.dst], bindings
        )
        for k, m, delta, count in flows:
            expanded.add_channel(
                f"{channel.name}_{k}_{m}_d{delta}",
                firing_name(channel.src, k),
                firing_name(channel.dst, m),
                production=count,
                consumption=count,
                initial_tokens=delta * count,
            )
    return expanded.freeze()


def hsdf_is_faithful(graph: CSDFGraph, bindings: Mapping | None = None) -> bool:
    """Oracle check used by tests: the expansion is homogeneous (all
    repetition counts 1), and it is live exactly when the original is.
    """
    from ..errors import DeadlockError
    from .schedule import find_sequential_schedule

    expanded = expand_to_hsdf(graph, bindings)
    q = concrete_repetition_vector(expanded)
    if set(q.values()) != {1}:
        return False

    def lives(g: CSDFGraph, b) -> bool:
        try:
            find_sequential_schedule(g, b, policy="round_robin")
        except DeadlockError:
            return False
        return True

    return lives(graph, bindings) == lives(expanded, None)
