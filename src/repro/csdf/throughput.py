"""Self-timed execution: latency and throughput of (C)SDF graphs.

The paper evaluates buffers; a downstream adopter also needs the two
classic performance views the MPPA-256 motivation implies:

* **iteration latency** — makespan of one iteration from a cold start;
* **self-timed throughput** — sustained iterations/time when actors
  fire as soon as their tokens (and a free core) allow, with iterations
  overlapping (software pipelining across iteration boundaries).

Both are computed by a timed variant of the token simulation: an event
queue of firing completions over the bound graph, with an optional core
budget.  Firings are split-phase (consume at start, produce at
completion) and auto-concurrency is disabled — one in-flight firing per
actor, the standard self-timed semantics.  No data values are moved, so
this scales to large repetition vectors.

The hot loop is the **dependency-driven event core** of
:mod:`repro.csdf.eventloop`: instead of rescanning every actor after
every completion event, a :class:`~repro.csdf.eventloop.ReadyWorklist`
is seeded with exactly the actors adjacent to channels whose token
count (or reserved capacity) changed at the last event, and per-actor
firing tables are flattened to integer indices so the ready check is
list indexing with no name-keyed dict lookups.  The legacy full-scan
loop is retained as :func:`self_timed_execution_reference` — the
differential oracle (mirroring ``mcr_reference``) that
``tests/sim/test_eventloop_differential.py`` pins the new core against
bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..errors import DeadlockError
from .analysis import concrete_repetition_vector
from .eventloop import EventQueue, ReadyWorklist
from .graph import CSDFGraph


@dataclass
class TimedResult:
    """Outcome of a timed self-timed execution."""

    makespan: float
    iterations: int
    firings: int
    #: completion time of the k-th iteration (1-based), k = 1..iterations
    iteration_ends: list[float]
    #: peak fill level per channel during the run
    peaks: dict[str, int]

    @property
    def iteration_period(self) -> float:
        """Steady-state period estimated from the last two iterations
        (equals the makespan for a single iteration)."""
        if len(self.iteration_ends) >= 2:
            return self.iteration_ends[-1] - self.iteration_ends[-2]
        return self.iteration_ends[-1] if self.iteration_ends else 0.0

    @property
    def throughput(self) -> float:
        """Iterations per unit time in steady state."""
        period = self.iteration_period
        return 1.0 / period if period > 0 else float("inf")


class _TimedState:
    """Token counts + precomputed per-actor firing tables.

    Channels are flattened to integer slots and every actor carries
    read-only tuples of ``(slot, phases)`` pairs for its inputs and
    outputs — the hot loop does list indexing and one modulo per
    attached channel instead of rebuilding name-keyed dict lookups on
    every event.

    With ``capacities``, writes block: an actor may only start when
    every output channel has room for this firing's production
    (space is reserved at start, so concurrent firings cannot
    over-commit a buffer).
    """

    __slots__ = ("channel_names", "tokens", "reserved", "caps",
                 "inputs", "outputs", "capped_out", "_peaks")

    def __init__(self, graph: CSDFGraph, bindings: Mapping | None,
                 capacities: Mapping[str, int] | None = None):
        channels = list(graph.channels.values())
        self.channel_names = [c.name for c in channels]
        slot = {name: i for i, name in enumerate(self.channel_names)}
        self.tokens = [c.initial_tokens for c in channels]
        self.reserved = [0] * len(channels)
        caps_map = dict(capacities) if capacities else {}
        self.caps = [caps_map.get(name) for name in self.channel_names]

        ins: dict[str, list] = {name: [] for name in graph.actors}
        outs: dict[str, list] = {name: [] for name in graph.actors}
        for channel in channels:
            ins[channel.dst].append(
                (slot[channel.name], channel.consumption.as_ints(bindings))
            )
            outs[channel.src].append(
                (slot[channel.name], channel.production.as_ints(bindings))
            )
        #: per-actor firing tables: name -> tuple of (slot, phases)
        self.inputs = {name: tuple(pairs) for name, pairs in ins.items()}
        self.outputs = {name: tuple(pairs) for name, pairs in outs.items()}
        #: capacity-checked outputs as (slot, prod_phases, cons_phases),
        #: cons_phases non-None for self-loops (their own consumption
        #: frees space before the firing produces).
        self.capped_out = {}
        for name in graph.actors:
            in_slots = dict(ins[name])
            self.capped_out[name] = tuple(
                (s, phases, in_slots.get(s))
                for s, phases in outs[name]
                if self.caps[s] is not None
            )
        self._peaks = list(self.tokens)

    def can_start(self, actor: str, firing: int) -> bool:
        tokens = self.tokens
        for s, phases in self.inputs[actor]:
            if tokens[s] < phases[firing % len(phases)]:
                return False
        for s, phases, cons_phases in self.capped_out[actor]:
            produced = phases[firing % len(phases)]
            occupancy = tokens[s] + self.reserved[s]
            if cons_phases is not None:
                occupancy -= cons_phases[firing % len(cons_phases)]
            if occupancy + produced > self.caps[s]:
                return False
        return True

    def consume(self, actor: str, firing: int) -> None:
        tokens = self.tokens
        for s, phases in self.inputs[actor]:
            tokens[s] -= phases[firing % len(phases)]
        for s, phases, _ in self.capped_out[actor]:
            self.reserved[s] += phases[firing % len(phases)]

    def produce(self, actor: str, firing: int) -> None:
        tokens = self.tokens
        peaks = self._peaks
        for s, phases in self.outputs[actor]:
            produced = phases[firing % len(phases)]
            level = tokens[s] + produced
            tokens[s] = level
            if self.caps[s] is not None:
                self.reserved[s] -= produced
            if level > peaks[s]:
                peaks[s] = level

    @property
    def peaks(self) -> dict[str, int]:
        """Peak fill level per channel (name-keyed view)."""
        return dict(zip(self.channel_names, self._peaks))


class _IndexedState(_TimedState):
    """Actor-indexed extension of the firing tables.

    Adds position-keyed views of the per-actor tables (the scan order
    is the repetition-vector order, as in the legacy loop) plus the
    channel adjacency the dependency-driven wakeup needs:

    * ``capped_src_pos[pos]`` — producers to re-examine when ``pos``
      consumes from a capacity-bounded input (their reserved headroom
      grew);
    * ``out_dst_pos[pos]`` — consumers to re-examine when ``pos``
      completes a firing (their input token counts grew).
    """

    __slots__ = ("in_by_pos", "out_by_pos", "capped_by_pos",
                 "capped_src_pos", "out_dst_pos")

    def __init__(self, graph: CSDFGraph, bindings: Mapping | None,
                 capacities: Mapping[str, int] | None, order: list[str]):
        super().__init__(graph, bindings, capacities)
        apos = {name: i for i, name in enumerate(order)}
        self.in_by_pos = [self.inputs[name] for name in order]
        self.out_by_pos = [self.outputs[name] for name in order]
        self.capped_by_pos = [self.capped_out[name] for name in order]
        channels = list(graph.channels.values())
        src_pos = [apos[c.src] for c in channels]
        dst_pos = [apos[c.dst] for c in channels]
        caps = self.caps
        self.capped_src_pos = [
            tuple(src_pos[s] for s, _ph in self.inputs[name]
                  if caps[s] is not None)
            for name in order
        ]
        self.out_dst_pos = [
            tuple(dst_pos[s] for s, _ph in self.outputs[name])
            for name in order
        ]

    def can_start_at(self, pos: int, firing: int) -> bool:
        tokens = self.tokens
        for s, phases in self.in_by_pos[pos]:
            if tokens[s] < phases[firing % len(phases)]:
                return False
        caps, reserved = self.caps, self.reserved
        for s, phases, cons_phases in self.capped_by_pos[pos]:
            produced = phases[firing % len(phases)]
            occupancy = tokens[s] + reserved[s]
            if cons_phases is not None:
                occupancy -= cons_phases[firing % len(cons_phases)]
            if occupancy + produced > caps[s]:
                return False
        return True

    def consume_at(self, pos: int, firing: int) -> None:
        tokens = self.tokens
        for s, phases in self.in_by_pos[pos]:
            tokens[s] -= phases[firing % len(phases)]
        reserved = self.reserved
        for s, phases, _ in self.capped_by_pos[pos]:
            reserved[s] += phases[firing % len(phases)]

    def produce_at(self, pos: int, firing: int) -> None:
        tokens = self.tokens
        peaks = self._peaks
        caps, reserved = self.caps, self.reserved
        for s, phases in self.out_by_pos[pos]:
            produced = phases[firing % len(phases)]
            level = tokens[s] + produced
            tokens[s] = level
            if caps[s] is not None:
                reserved[s] -= produced
            if level > peaks[s]:
                peaks[s] = level


#: Execution backends of :func:`self_timed_execution`, fastest first.
BACKENDS = ("arrays", "wakeup", "reference")


def validate_capacities(
    graph: CSDFGraph, capacities: Mapping[str, int] | None
) -> None:
    """Reject capacity vectors naming channels the graph doesn't have.

    Every capacity-accepting entry point calls this (all execution
    backends, the simulator, the buffer search, the CLI): a typo'd
    channel name used to be silently dropped by the slot-mapping
    loops — the execution then ran *unconstrained* on the channel the
    caller thought was bounded.
    """
    if not capacities:
        return
    unknown = sorted(set(capacities) - set(graph.channels))
    if unknown:
        known = ", ".join(sorted(graph.channels)) or "(none)"
        raise ValueError(
            "unknown channel name(s) in capacities: "
            f"{', '.join(unknown)}; graph channels are: {known}"
        )


def _initial_fit_error(channels, actors) -> DeadlockError:
    """The up-front deadlock all backends raise for a capacity below a
    channel's initial tokens.

    The initial marking does not fit the buffer, so the run could never
    have been admitted; executing anyway used to *silently succeed*
    whenever the consumer drained the over-full channel — an
    over-capacity run that reported peaks above the declared bound.
    The error is deterministic (sorted channel list, scan-order blocked
    set) so the three backends and the batched kernel agree bit for
    bit.
    """
    names = ", ".join(sorted(channels))
    return DeadlockError(
        f"channel capacity below initial tokens: {names}",
        blocked=list(actors),
    )


def _check_capacity_contract(graph, capacities, order) -> None:
    """Name validation plus the initial-tokens admission check, shared
    by the wakeup and reference executors (the arrays and batched
    kernels run the same checks on their slot arrays)."""
    if not capacities:
        return
    validate_capacities(graph, capacities)
    too_small = [
        name for name, channel in graph.channels.items()
        if capacities.get(name) is not None
        and capacities[name] < channel.initial_tokens
    ]
    if too_small:
        raise _initial_fit_error(too_small, list(order))


def capacity_floors(
    graph: CSDFGraph, bindings: Mapping | None = None
) -> dict[str, int]:
    """The per-channel *capacity floor*: the smallest capacity not
    provably infeasible, ``max(initial tokens, max consumption phase,
    max production phase)``.

    Any capacity below it deadlocks (or is rejected up front): the
    initial marking must fit the buffer, the consumer's largest
    consumption phase must fit below it (tokens never exceed the
    capacity, so a larger consumption can never be covered), and the
    producer's largest production phase must fit into an empty buffer
    (a full repetition cycle visits every phase).  The buffer search
    uses it to discard below-floor probes without executing them —
    measured on the EXT7 search, over half of all probes.
    """
    from .batchexec import batch_tables
    from .statearrays import array_state

    state = array_state(graph, bindings)
    return dict(zip(state.channel_names,
                    batch_tables(state).floor.tolist()))


def self_timed_execution(
    graph: CSDFGraph,
    bindings: Mapping | None = None,
    iterations: int = 1,
    cores: int | None = None,
    capacities: Mapping[str, int] | None = None,
    stats: dict | None = None,
    backend: str = "arrays",
) -> TimedResult:
    """Fire actors as soon as tokens and cores allow, for ``iterations``
    full iterations of the repetition vector.

    ``capacities`` bounds channel buffers with blocking writes — the
    input to the buffer/throughput trade-off study (EXT3): tighter
    buffers serialize producers and consumers, stretching the
    steady-state period.

    ``backend`` selects one of three bit-identical execution cores
    (every float of the result, every deadlock blocked-set, and every
    scheduling decision under a core budget agree — pinned by
    ``tests/sim/test_eventloop_differential.py``):

    ``"arrays"`` (default)
        The array-state backend of :mod:`repro.csdf.statearrays`:
        struct-of-arrays state cloned from a memoized numpy template,
        incremental constraint counters instead of per-visit firing
        tables, and the calendar-queue event scheduler of
        :mod:`repro.csdf.calqueue`.
    ``"wakeup"``
        The dependency-driven worklist core of
        :mod:`repro.csdf.eventloop`: after each completion event only
        the actors adjacent to changed channels are re-examined.
    ``"reference"``
        The legacy full-rescan loop
        (:func:`self_timed_execution_reference`) — the differential
        oracle.

    ``stats``, when given a dict, receives ``ready_visits`` (actors
    examined by the ready check) and ``events`` counters.

    Raises :class:`~repro.errors.DeadlockError` if the execution stalls
    before completing (e.g. a tokenless cycle or undersized buffers).
    """
    if backend not in BACKENDS:
        raise ValueError(
            f"backend must be one of {', '.join(map(repr, BACKENDS))}, "
            f"got {backend!r}"
        )
    if backend == "arrays":
        from .statearrays import self_timed_execution_arrays

        return self_timed_execution_arrays(
            graph, bindings, iterations=iterations, cores=cores,
            capacities=capacities, stats=stats,
        )
    if backend == "reference":
        return self_timed_execution_reference(
            graph, bindings, iterations=iterations, cores=cores,
            capacities=capacities, stats=stats,
        )
    if iterations < 1:
        raise ValueError("need at least one iteration")
    q = concrete_repetition_vector(graph, bindings)
    order = list(q)
    _check_capacity_contract(graph, capacities, order)
    n_actors = len(order)
    targets = [q[name] * iterations for name in order]
    qv = [q[name] for name in order]
    state = _IndexedState(graph, bindings, capacities, order)
    exec_times = [graph.actor(name).exec_times for name in order]
    started = [0] * n_actors
    completed = [0] * n_actors
    busy = bytearray(n_actors)
    capped_src_pos = state.capped_src_pos
    out_dst_pos = state.out_dst_pos
    can_start = state.can_start_at
    consume = state.consume_at
    produce = state.produce_at

    events = EventQueue()
    worklist = ReadyWorklist(n_actors)
    now = 0.0
    running = 0
    visits = 0
    iteration_ends: list[float] = []
    firings = 0
    # Incremental iteration tracking: instead of min(completed/q) over
    # all actors per event, count the actors still short of the next
    # iteration boundary and advance the boundary when the count hits 0.
    iteration_target = 1
    short_of_target = sum(1 for i in range(n_actors) if completed[i] < qv[i])

    def drain() -> None:
        """Start every ready firing (the try_start of the legacy loop,
        restricted to the worklist candidates)."""
        nonlocal running, visits
        seed = worklist.seed
        while worklist.begin_scan():
            progress = False
            pos = worklist.pop()
            while pos >= 0:
                visits += 1
                if started[pos] >= targets[pos] or busy[pos]:
                    pos = worklist.pop()
                    continue
                if cores is not None and running >= cores:
                    worklist.suspend(pos)
                    return
                firing = started[pos]
                if can_start(pos, firing):
                    consume(pos, firing)
                    # Consuming from a capacity-bounded input freed
                    # headroom for its producer: wake it.
                    for producer in capped_src_pos[pos]:
                        seed(producer)
                    times = exec_times[pos]
                    duration = times[firing % len(times)]
                    events.push(now + duration, pos + n_actors * firing)
                    started[pos] = firing + 1
                    busy[pos] = 1
                    running += 1
                    progress = True
                pos = worklist.pop()
            worklist.end_scan()
            if not progress:
                return

    worklist.seed_all(n_actors)
    drain()
    while events:
        now, _, payload = events.pop()
        pos, firing = payload % n_actors, payload // n_actors
        produce(pos, firing)
        done = completed[pos] + 1
        completed[pos] = done
        busy[pos] = 0
        running -= 1
        firings += 1
        # Wakeup invariant: re-examine the completed actor (free again,
        # and a core was released) and the consumers whose input token
        # counts just grew.
        worklist.seed(pos)
        for consumer in out_dst_pos[pos]:
            worklist.seed(consumer)
        if done == qv[pos] * iteration_target:
            short_of_target -= 1
            while short_of_target == 0:
                iteration_ends.append(now)
                iteration_target += 1
                short_of_target = sum(
                    1 for i in range(n_actors)
                    if completed[i] < qv[i] * iteration_target
                )
                if iteration_target > iterations:
                    break
        drain()

    if stats is not None:
        stats["ready_visits"] = visits
        stats["events"] = firings
    if any(completed[i] < targets[i] for i in range(n_actors)):
        blocked = [order[i] for i in range(n_actors)
                   if completed[i] < targets[i]]
        raise DeadlockError(
            f"self-timed execution stalled after {firings} firings",
            blocked=blocked,
        )
    return TimedResult(
        makespan=now,
        iterations=iterations,
        firings=firings,
        iteration_ends=iteration_ends,
        peaks=dict(state.peaks),
    )


def self_timed_execution_reference(
    graph: CSDFGraph,
    bindings: Mapping | None = None,
    iterations: int = 1,
    cores: int | None = None,
    capacities: Mapping[str, int] | None = None,
    stats: dict | None = None,
) -> TimedResult:
    """Legacy full-scan self-timed executor, kept as the differential
    oracle for :func:`self_timed_execution` (the ``mcr_reference``
    pattern): after every completion event it rescans every actor still
    short of its firing target.  Semantics — including the scan-order
    tie-break that decides core-budget scheduling — are the contract
    the dependency-driven core must reproduce bit for bit.
    """
    import heapq

    if iterations < 1:
        raise ValueError("need at least one iteration")
    q = concrete_repetition_vector(graph, bindings)
    _check_capacity_contract(graph, capacities, list(q))
    targets = {name: count * iterations for name, count in q.items()}
    state = _TimedState(graph, bindings, capacities)
    exec_times = {name: graph.actor(name).exec_times for name in targets}
    started = {name: 0 for name in targets}
    completed = {name: 0 for name in targets}
    busy: set[str] = set()
    #: scan list for the ready check; actors leave once fully started
    #: (same relative order as the repetition vector, so scheduling
    #: decisions under a core budget are unchanged).
    startable = list(targets)

    heap: list[tuple[float, int, str, int]] = []
    seq = 0
    now = 0.0
    running = 0
    visits = 0
    iteration_ends: list[float] = []
    firings = 0
    iteration_target = 1
    short_of_target = sum(1 for a in q if completed[a] < q[a])

    def try_start() -> None:
        nonlocal seq, running, visits
        progress = True
        while progress:
            progress = False
            pos = 0
            while pos < len(startable):
                visits += 1
                name = startable[pos]
                n = started[name]
                if n >= targets[name]:
                    startable.pop(pos)
                    continue
                if name in busy:
                    pos += 1
                    continue
                if cores is not None and running >= cores:
                    return
                if not state.can_start(name, n):
                    pos += 1
                    continue
                state.consume(name, n)
                times = exec_times[name]
                duration = times[n % len(times)]
                heapq.heappush(heap, (now + duration, seq, name, n))
                seq += 1
                started[name] = n + 1
                busy.add(name)
                running += 1
                progress = True
                pos += 1

    try_start()
    while heap:
        now, _, name, n = heapq.heappop(heap)
        state.produce(name, n)
        done = completed[name] + 1
        completed[name] = done
        busy.discard(name)
        running -= 1
        firings += 1
        if done == q[name] * iteration_target:
            short_of_target -= 1
            while short_of_target == 0:
                iteration_ends.append(now)
                iteration_target += 1
                short_of_target = sum(
                    1 for a in q if completed[a] < q[a] * iteration_target
                )
                if iteration_target > iterations:
                    break
        try_start()

    if stats is not None:
        stats["ready_visits"] = visits
        stats["events"] = firings
    if any(completed[name] < targets[name] for name in targets):
        blocked = [name for name in targets if completed[name] < targets[name]]
        raise DeadlockError(
            f"self-timed execution stalled after {firings} firings",
            blocked=blocked,
        )
    return TimedResult(
        makespan=now,
        iterations=iterations,
        firings=firings,
        iteration_ends=iteration_ends,
        peaks=dict(state.peaks),
    )


def iteration_latency(
    graph: CSDFGraph,
    bindings: Mapping | None = None,
    cores: int | None = None,
) -> float:
    """Cold-start makespan of a single iteration."""
    return self_timed_execution(graph, bindings, iterations=1, cores=cores).makespan


def throughput_vs_cores(
    graph: CSDFGraph,
    bindings: Mapping | None = None,
    core_budgets: tuple[int, ...] = (1, 2, 4, 8, 16),
    iterations: int = 4,
) -> dict[int, TimedResult]:
    """Self-timed throughput across core budgets (EXT2 bench input)."""
    return {
        cores: self_timed_execution(graph, bindings, iterations=iterations, cores=cores)
        for cores in core_budgets
    }


#: Fewest executed iterations a buffer-search probe may use: below
#: this, ``_steady_period`` has no steady window to average over and
#: the estimate degenerates to the aliasing-prone last-delta — exactly
#: the estimator that used to accept undersized capacities.
_MIN_PROBE_ITERATIONS = 4


def min_buffers_for_full_throughput(
    graph: CSDFGraph,
    bindings: Mapping | None = None,
    iterations: int = 6,
    tolerance: float = 1e-6,
    warm_start: bool = True,
    stats: dict | None = None,
    backend: str = "arrays",
    probe_floor: bool = True,
    memoize_probes: bool = True,
    batched: bool = False,
    capacities: Mapping[str, int] | None = None,
) -> dict[str, int]:
    """Smallest per-channel capacities preserving unconstrained
    throughput (a classic buffer-sizing DSE point).

    Strategy: take the unconstrained steady-state period *analytically*
    from Howard's MCR (Reiter: the converged self-timed period equals
    the maximum cycle ratio, so no simulated warm-up estimate is
    needed), start from the peaks of an unconstrained execution (which
    by construction achieve it), then shrink each channel in turn by
    binary search to the smallest capacity that keeps the period within
    ``tolerance``.  Greedy per-channel shrinking is not globally
    optimal (the joint problem is NP-hard) but matches the standard
    practice the paper's tool ecosystem uses, and the result is
    validated by re-execution.

    The measured probe periods are still finite-horizon (``iterations``
    long, floored at ``_MIN_PROBE_ITERATIONS`` so every estimate has a
    steady window to average over), so the analytic target is only
    adopted when the unconstrained execution confirms it (measured
    period within ``tolerance`` of the MCR, *relative* to the period
    scale so large-exec-time graphs converge too).  Otherwise — horizon too short to
    converge, or a steady state whose per-iteration deltas oscillate
    around the MCR — the measured period stays the target, exactly the
    pre-analytic behaviour: the search is never asked for a period the
    probe executions cannot exhibit, and never *loosened* against a
    probe that measures below the true average.

    Probe feasibility is judged by the **steady-window period** (mean
    iteration delta over the last two thirds of the run, see
    ``_steady_period``), not the single last delta: capacity-bounded
    steady states often cycle through a short pattern of deltas
    (e.g. ``1, 1, 3`` repeating — true period 5/3), and the last delta
    alone aliases with the horizon, accepting capacities whose true
    period is above the target and making the measured
    capacity/period curve spuriously non-monotone.

    With ``warm_start`` (the default) each channel's search range is
    first narrowed from the **symbolic buffer bounds** of
    :func:`repro.csdf.symbuf.symbolic_channel_bounds`: the bound —
    initial tokens plus one iteration's traffic — is often far below
    the unconstrained peak on imbalanced pipelines (where a fast
    producer runs many iterations ahead), and one feasibility probe at
    the bound then replaces ``log2(peak/bound)`` probe executions.
    Because capacity/period is monotone along the probed curve, the
    warm probe narrows the range in **both** directions: a sustaining
    probe lowers the ceiling to the bound, and a failing probe raises
    the floor to ``bound + 1`` (every smaller capacity fails a
    fortiori) instead of discarding the observation.  Each probe is
    observed before the range shrinks, so the warm and cold searches
    return identical capacities
    (``tests/csdf/test_throughput.py`` asserts equality, and the EXT3
    bench records the probes saved).  ``stats``, when given a dict, is
    filled with ``probes`` (actual probe executions) and
    ``warm_failed`` counters plus ``probes_saved``, a ``bit_length``
    *estimate* of the binary-search steps the narrowing removed (the
    measured saving is ``cold probes - warm probes``, which the EXT3c
    bench reports side by side) — plus ``target``,
    ``target_is_analytic`` and the effective ``iterations``.

    ``backend`` selects the execution core for the unconstrained run
    and every probe (all cores are bit-identical; the default
    ``"arrays"`` keeps the whole search on the struct-of-arrays state,
    cloning each probe from one memoized template).

    Three probe-economy switches, all preserving the returned
    capacities exactly (asserted over the differential corpus by
    ``tests/csdf/test_throughput.py`` / ``tests/csdf/test_batchexec.py``):

    ``probe_floor`` (default on)
        discard candidate vectors below the analytic
        :func:`capacity_floors` without executing them (provably
        infeasible — on the EXT7 search over half of all probes);
    ``memoize_probes`` (default on)
        cache each probe's verdict under its full capacity-vector key
        for the duration of the search, so a vector is never executed
        twice; ``stats["probes"]`` counts *executed* probes only, with
        ``probes_floored`` / ``probes_memoized`` recording the
        shortcuts taken;
    ``batched``
        pre-execute the probe ladder in lock-step K-run batches
        (:func:`repro.csdf.batchexec.self_timed_execution_batch`):
        every unresolved channel contributes its next candidate vector
        (earlier channels speculated at their capacity floor until
        actually resolved — on the bench corpus most channels do
        resolve there) and the whole round runs as one batch; the
        sequential search then replays against the memoized verdicts.
        A misprediction (a channel resolving away from its speculated
        floor, or a warm probe failing under speculation) aborts the
        pre-pass — never changing the answer, because the replay is
        the authority — so hard graphs pay at most one cheap
        deadlock-dominated round.  Implies ``memoize_probes``.

    ``capacities``, when given, **pins** those channels: the pinned
    values are kept verbatim (validated against the graph's channel
    names — unknown names raise ``ValueError``; a pin below a
    channel's initial tokens raises the same up-front
    :class:`~repro.errors.DeadlockError` as the executors) and only
    the remaining channels are minimized subject to the pins.  Pins
    below the analytic :func:`capacity_floors` are provably infeasible
    and raise ``ValueError`` up front; above the floor the search has
    the same best-effort semantics as the unpinned case (each free
    channel minimal against the observed probe verdicts).
    """
    from .mcr import max_cycle_ratio

    # Horizon guard: with fewer than three iteration ends the steady
    # window of ``_steady_period`` is empty and both the target and the
    # probe verdicts degenerate to the last-two-ends delta — the
    # aliasing-prone estimator this search was explicitly cured of.
    # Short requests are executed at the minimum sound horizon instead
    # (more iterations never bias the estimate, they only steady it).
    iterations = max(iterations, _MIN_PROBE_ITERATIONS)

    pins = dict(capacities) if capacities else {}
    if pins:
        _check_capacity_contract(graph, pins, list(graph.actors))

    unconstrained = self_timed_execution(
        graph, bindings, iterations=iterations, backend=backend
    )
    target = _steady_period(unconstrained)
    mcr = max_cycle_ratio(graph, bindings)
    # Convergence is judged *relative* to the period scale: an absolute
    # 1e-6 is below float resolution once periods reach ~1e10 and, far
    # earlier, is routinely missed from accumulation noise alone on
    # graphs with large exec times (scaled EXT2 rows) — which silently
    # left the noisy measured estimate as the search target instead of
    # the exact analytic MCR.
    target_is_analytic = abs(target - mcr) <= tolerance * max(1.0, abs(mcr))
    if target_is_analytic:
        target = mcr  # confirmed converged: use the exact analytic value
    # Probe acceptance gets the same scale treatment: a probe whose
    # true steady period *is* the target can measure away from it by
    # accumulation noise proportional to the period scale, and an
    # absolute slack would reject it — returning oversized (non-
    # minimal) capacities on large-exec-time graphs.
    slack = tolerance * max(1.0, abs(target))
    capacities = dict(unconstrained.peaks)
    capacities.update(pins)
    names = sorted(set(capacities) - set(pins))
    counters = {"probes": 0, "probes_saved": 0, "warm_failed": 0,
                "probes_floored": 0, "probes_memoized": 0,
                "batch_rounds": 0}
    if batched:
        memoize_probes = True
    floors = (
        capacity_floors(graph, bindings)
        if (probe_floor or batched or pins) else {}
    )
    if pins:
        below = sorted(
            name for name, value in pins.items() if value < floors[name]
        )
        if below:
            # Provably infeasible (the floor argument of
            # ``capacity_floors``): no sizing of the free channels can
            # recover full throughput under these pins.
            raise ValueError(
                "pinned capacity below the analytic floor: "
                + ", ".join(
                    f"{name}={pins[name]} (floor {floors[name]})"
                    for name in below
                )
            )
    memo: dict[tuple, float] = {}

    def probe_key(caps: Mapping[str, int]) -> tuple:
        return tuple(caps[name] for name in names)

    def execute_probe(caps: Mapping[str, int]) -> float:
        counters["probes"] += 1
        try:
            result = self_timed_execution(
                graph, bindings, iterations=iterations, capacities=caps,
                backend=backend,
            )
        except DeadlockError:
            return float("inf")
        return _steady_period(result)

    def period_with(caps: Mapping[str, int]) -> float:
        if probe_floor and any(
            caps[name] < floor for name, floor in floors.items()
        ):
            # Provably infeasible — the verdict an execution would
            # reach, without the execution.
            counters["probes_floored"] += 1
            return float("inf")
        if not memoize_probes:
            return execute_probe(caps)
        key = probe_key(caps)
        verdict = memo.get(key)
        if verdict is None:
            memo[key] = verdict = execute_probe(caps)
        else:
            counters["probes_memoized"] += 1
        return verdict

    warm_bounds = _symbolic_warm_bounds(graph, bindings) if warm_start else {}

    if batched:
        _batched_probe_rounds(
            graph, bindings, iterations, backend, names, capacities,
            floors if probe_floor else {}, floors, warm_bounds,
            target, slack, memo, probe_key, counters,
        )

    for name in names:
        lo, hi = 0, capacities[name]
        warm = warm_bounds.get(name)
        if warm is not None and warm < hi:
            probe = dict(capacities)
            probe[name] = warm
            if period_with(probe) <= target + slack:
                # The bound sustains full throughput: search below it.
                counters["probes_saved"] += max(
                    0, hi.bit_length() - warm.bit_length() - 1
                )
                hi = warm
            else:
                # The bound fails (one iteration's traffic is not
                # enough pipelining slack here).  Capacity/period is
                # monotone along the probed curve, so every capacity
                # <= warm fails a fortiori: raise the floor instead of
                # discarding the probe.
                counters["warm_failed"] += 1
                counters["probes_saved"] += max(
                    0, (hi + 1).bit_length() - (hi - warm).bit_length()
                )
                lo = warm + 1
        while lo < hi:
            mid = (lo + hi) // 2
            probe = dict(capacities)
            probe[name] = mid
            if period_with(probe) <= target + slack:
                hi = mid
            else:
                lo = mid + 1
        capacities[name] = hi
    if stats is not None:
        counters["target"] = target
        counters["target_is_analytic"] = target_is_analytic
        counters["iterations"] = iterations
        stats.update(counters)
    return capacities


class _ChannelSearch:
    """The greedy per-channel probe ladder of
    :func:`min_buffers_for_full_throughput`, reified so the batched
    prober can run many ladders concurrently: ``next_value()`` yields
    the capacity the sequential loop would probe next, ``observe()``
    feeds the verdict back.  Built against a snapshot of the earlier
    channels' (possibly speculated) finals — a prefix change discards
    the ladder."""

    __slots__ = ("prefix_key", "lo", "hi", "warm", "warm_pending")

    def __init__(self, prefix_key, hi, warm):
        self.prefix_key = prefix_key
        self.lo = 0
        self.hi = hi
        self.warm = warm
        self.warm_pending = warm is not None and warm < hi

    def next_value(self):
        if self.warm_pending:
            return self.warm
        if self.lo < self.hi:
            return (self.lo + self.hi) // 2
        return None  # resolved: final == self.hi

    def observe(self, value, feasible):
        if self.warm_pending:
            self.warm_pending = False
            if feasible:
                self.hi = value
            else:
                self.lo = value + 1
            return
        if feasible:
            self.hi = value
        else:
            self.lo = value + 1


def _batched_probe_rounds(
    graph, bindings, iterations, backend, names, peaks,
    kill_floors, spec_floors, warm_bounds, target, slack,
    memo, probe_key, counters,
) -> None:
    """Pre-execute the greedy search's probes in lock-step batches.

    Each round, every unresolved channel contributes the next probe of
    its :class:`_ChannelSearch` ladder, built against a prefix that
    uses the *actual* final for already-resolved earlier channels and
    the capacity floor as a speculation for unresolved ones.  The whole
    round executes as **one** invocation of the lock-step batched
    kernel and the verdicts land in ``memo`` under their full-vector
    keys.  On graphs where every channel resolves at its floor — the
    common case on the random corpus — the speculation is exact, every
    round is fully useful, and the sequential replay in the caller hits
    the memo on every probe.

    Two guards keep the hard case cheap.  First, the moment a channel
    resolves away from its speculated floor, every ladder built after
    it sits on a wrong prefix — re-speculating cascades (each later
    resolution re-invalidates everything downstream, measured ~8x the
    useful probe count on the EXT7 bench graph), so the pre-pass aborts
    instead.  Second, the pre-pass aborts after any round in which a
    *warm* probe came back infeasible: under an exact prefix warm
    probes almost always succeed, so a failing one means the floors
    speculation is off and the ladders are about to climb into
    feasible (long-running) probes, which the lock-step kernel
    executes slower than the scalar loop — the opposite of the
    deadlock-dominated screens it is built for.  Either way probes
    already executed stay memoized and the unresolved channels fall
    through to the caller's sequential loop, which probes them with
    exact prefixes.  Mispredictions therefore cost at most one cheap
    deadlock-heavy round — never a different answer, because the
    replay is the authority either way.
    """
    from .batchexec import self_timed_execution_batch

    ladders: dict[str, _ChannelSearch] = {}
    resolved: dict[str, int] = {}

    def prefix_of(name):
        vec, key = dict(peaks), []
        for m in names:
            if m == name:
                break
            value = resolved.get(m)
            if value is None:
                value = min(spec_floors.get(m, 1), peaks[m])
            vec[m] = value
            key.append(value)
        return vec, tuple(key)

    while True:
        pending: dict[tuple, list[tuple[str, int]]] = {}
        for name in names:
            spec = min(spec_floors.get(name, 1), peaks[name])
            if resolved.get(name, spec) != spec:
                # Misprediction: this channel's final is not its floor,
                # so every ladder after it speculated a wrong prefix.
                # Abort — the sequential replay finishes from the memo.
                return
            if name in resolved:
                continue
            prefix, pkey = prefix_of(name)
            ladder = ladders.get(name)
            if ladder is None:
                ladder = _ChannelSearch(pkey, peaks[name],
                                        warm_bounds.get(name))
                ladders[name] = ladder
            # Advance through verdicts already known (floored or
            # memoized) until the ladder needs a fresh execution.
            while True:
                value = ladder.next_value()
                if value is None:
                    resolved[name] = ladder.hi
                    break
                probe = dict(prefix)
                probe[name] = value
                if any(probe[m] < floor
                       for m, floor in kill_floors.items()):
                    ladder.observe(value, False)
                    continue
                key = probe_key(probe)
                verdict = memo.get(key)
                if verdict is None:
                    pending.setdefault(key, []).append((name, value))
                    break
                ladder.observe(value, verdict <= target + slack)
        if not pending:
            return  # every channel resolved (all at its speculation)
        keys = list(pending)
        vectors = [dict(zip(names, key)) for key in keys]
        counters["batch_rounds"] += 1
        counters["probes"] += len(vectors)
        outcomes = self_timed_execution_batch(
            graph, bindings, iterations=iterations,
            capacities_list=vectors,
        )
        warm_missed = False
        for key, outcome in zip(keys, outcomes):
            verdict = (float("inf") if isinstance(outcome, DeadlockError)
                       else _steady_period(outcome))
            memo[key] = verdict
            feasible = verdict <= target + slack
            for name, value in pending[key]:
                ladder = ladders[name]
                if ladder.warm_pending and not feasible:
                    warm_missed = True
                ladder.observe(value, feasible)
        if warm_missed:
            return  # speculation is off; finish sequentially


def _steady_period(result: TimedResult) -> float:
    """Steady-state period estimate robust to transient alignment.

    The single last-two-ends delta (``TimedResult.iteration_period``)
    aliases when a capacity-bounded steady state cycles through a
    pattern of deltas: ``1, 1, 3, 1, 1, 3, ...`` measures 1.0 or 3.0
    depending on where the horizon lands, never the true 5/3.

    The estimate here averages the deltas over the last two thirds of
    the run (always discarding at least the first, fill-dominated
    iteration).  A window mean is exact whenever the window length is
    a multiple of the pattern length, and its worst-case aliasing
    error shrinks as pattern/window — so the widest window that still
    skips the transient is the right choice; the earlier "last half"
    window was narrow enough to alias a 3-cycle pattern at the default
    horizons.  No finite window is alias-proof, which is why the
    search results are additionally pinned by re-execution
    (``test_result_still_sustains_full_throughput``,
    ``test_steady_window_period_rejects_aliasing_capacity``) and by
    warm/cold search equality.

    Horizons too short for a steady window (fewer than three iteration
    ends) used to fall back to the aliasing-prone last delta silently.
    They now return the **maximum** per-iteration delta instead — a
    conservative over-estimate (a two-end run cannot distinguish
    transient from steady state, so the safe reading for a
    feasibility probe is the slowest observed iteration; an
    over-estimated period can only reject a capacity, never falsely
    accept one).  ``min_buffers_for_full_throughput`` additionally
    floors its executed iterations so its probes never reach this
    branch.
    """
    ends = result.iteration_ends
    count = len(ends)
    if count < 3:
        if count == 2:
            return max(ends[0], ends[1] - ends[0])
        return result.iteration_period
    start = max(1, (count - 1) // 3)
    return (ends[-1] - ends[start]) / (count - 1 - start)


def _symbolic_warm_bounds(
    graph: CSDFGraph, bindings: Mapping | None
) -> dict[str, int]:
    """Per-channel warm-start capacities from the symbolic bounds,
    evaluated at ``bindings``.  Best-effort: graphs the symbolic
    analysis cannot cover (or valuations it cannot evaluate) simply
    fall back to the cold search range.

    Bounds are clamped to >= 1: a parametric bound can evaluate to 0
    at a degenerate binding (no initial tokens and zero traffic), and
    probing capacity 0 on a channel that carries any traffic is a
    guaranteed-deadlock execution — a wasted probe.

    The evaluated bounds are memoized per (graph version, bindings)
    through :mod:`repro.cache`: the symbolic analysis plus Fraction
    evaluation costs several milliseconds at bench sizes, a fixed tax
    on every warm search that repeated searches of the same graph
    (probe sweeps, benches, services) shouldn't pay twice.
    """
    from ..cache import bindings_key, cached

    return cached(
        graph, ("warm_buffer_bounds", bindings_key(bindings)),
        lambda: _compute_warm_bounds(graph, bindings),
    )


def _compute_warm_bounds(
    graph: CSDFGraph, bindings: Mapping | None
) -> dict[str, int]:
    from ..errors import ReproError
    from ..symbolic import InconsistentRatesError
    from .symbuf import symbolic_channel_bounds

    try:
        bounds = symbolic_channel_bounds(graph)
    except (ReproError, InconsistentRatesError):
        return {}
    warm: dict[str, int] = {}
    for name, poly in bounds.items():
        try:
            value = poly.evaluate(bindings or {})
        except (KeyError, ValueError, ZeroDivisionError):
            continue
        if value >= 0:
            warm[name] = max(
                1, int(value) + (0 if value.denominator == 1 else 1)
            )
    return warm


def buffer_throughput_tradeoff(
    graph: CSDFGraph,
    bindings: Mapping | None = None,
    scales: tuple[float, ...] = (1.0, 1.5, 2.0, 4.0),
    iterations: int = 4,
) -> list[tuple[int, TimedResult]]:
    """The classic buffer-size / throughput trade-off (EXT3).

    Starting from the minimal single-processor capacities (buffer peaks
    of the buffer-minimizing schedule), scale every channel's capacity
    by each factor and measure the steady-state period under blocking
    writes.  Returns ``(total_buffer, TimedResult)`` pairs sorted by
    buffer budget: larger budgets never slow the pipeline down, and
    throughput saturates once the bottleneck actor dominates.
    """
    from .buffers import minimal_buffer_schedule

    _, minimal = minimal_buffer_schedule(graph, bindings)
    out: list[tuple[int, TimedResult]] = []
    for scale in scales:
        capacities = {
            name: max(1, int(peak * scale)) for name, peak in minimal.items()
        }
        result = self_timed_execution(
            graph, bindings, iterations=iterations, capacities=capacities
        )
        out.append((sum(capacities.values()), result))
    return out
