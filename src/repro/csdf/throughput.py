"""Self-timed execution: latency and throughput of (C)SDF graphs.

The paper evaluates buffers; a downstream adopter also needs the two
classic performance views the MPPA-256 motivation implies:

* **iteration latency** — makespan of one iteration from a cold start;
* **self-timed throughput** — sustained iterations/time when actors
  fire as soon as their tokens (and a free core) allow, with iterations
  overlapping (software pipelining across iteration boundaries).

Both are computed by a timed variant of the token simulation: an event
queue of firing completions over the bound graph, with an optional core
budget.  Firings are split-phase (consume at start, produce at
completion) and auto-concurrency is disabled — one in-flight firing per
actor, the standard self-timed semantics.  No data values are moved, so
this scales to large repetition vectors.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Mapping

from ..errors import DeadlockError
from .analysis import concrete_repetition_vector
from .graph import CSDFGraph


@dataclass
class TimedResult:
    """Outcome of a timed self-timed execution."""

    makespan: float
    iterations: int
    firings: int
    #: completion time of the k-th iteration (1-based), k = 1..iterations
    iteration_ends: list[float]
    #: peak fill level per channel during the run
    peaks: dict[str, int]

    @property
    def iteration_period(self) -> float:
        """Steady-state period estimated from the last two iterations
        (equals the makespan for a single iteration)."""
        if len(self.iteration_ends) >= 2:
            return self.iteration_ends[-1] - self.iteration_ends[-2]
        return self.iteration_ends[-1] if self.iteration_ends else 0.0

    @property
    def throughput(self) -> float:
        """Iterations per unit time in steady state."""
        period = self.iteration_period
        return 1.0 / period if period > 0 else float("inf")


class _TimedState:
    """Token counts + precomputed per-actor firing tables.

    Channels are flattened to integer slots and every actor carries
    read-only tuples of ``(slot, phases)`` pairs for its inputs and
    outputs — the hot loop does list indexing and one modulo per
    attached channel instead of rebuilding name-keyed dict lookups on
    every event.

    With ``capacities``, writes block: an actor may only start when
    every output channel has room for this firing's production
    (space is reserved at start, so concurrent firings cannot
    over-commit a buffer).
    """

    __slots__ = ("channel_names", "tokens", "reserved", "caps",
                 "inputs", "outputs", "capped_out", "_peaks")

    def __init__(self, graph: CSDFGraph, bindings: Mapping | None,
                 capacities: Mapping[str, int] | None = None):
        channels = list(graph.channels.values())
        self.channel_names = [c.name for c in channels]
        slot = {name: i for i, name in enumerate(self.channel_names)}
        self.tokens = [c.initial_tokens for c in channels]
        self.reserved = [0] * len(channels)
        caps_map = dict(capacities) if capacities else {}
        self.caps = [caps_map.get(name) for name in self.channel_names]

        ins: dict[str, list] = {name: [] for name in graph.actors}
        outs: dict[str, list] = {name: [] for name in graph.actors}
        for channel in channels:
            ins[channel.dst].append(
                (slot[channel.name], channel.consumption.as_ints(bindings))
            )
            outs[channel.src].append(
                (slot[channel.name], channel.production.as_ints(bindings))
            )
        #: per-actor firing tables: name -> tuple of (slot, phases)
        self.inputs = {name: tuple(pairs) for name, pairs in ins.items()}
        self.outputs = {name: tuple(pairs) for name, pairs in outs.items()}
        #: capacity-checked outputs as (slot, prod_phases, cons_phases),
        #: cons_phases non-None for self-loops (their own consumption
        #: frees space before the firing produces).
        self.capped_out = {}
        for name in graph.actors:
            in_slots = dict(ins[name])
            self.capped_out[name] = tuple(
                (s, phases, in_slots.get(s))
                for s, phases in outs[name]
                if self.caps[s] is not None
            )
        self._peaks = list(self.tokens)

    def can_start(self, actor: str, firing: int) -> bool:
        tokens = self.tokens
        for s, phases in self.inputs[actor]:
            if tokens[s] < phases[firing % len(phases)]:
                return False
        for s, phases, cons_phases in self.capped_out[actor]:
            produced = phases[firing % len(phases)]
            occupancy = tokens[s] + self.reserved[s]
            if cons_phases is not None:
                occupancy -= cons_phases[firing % len(cons_phases)]
            if occupancy + produced > self.caps[s]:
                return False
        return True

    def consume(self, actor: str, firing: int) -> None:
        tokens = self.tokens
        for s, phases in self.inputs[actor]:
            tokens[s] -= phases[firing % len(phases)]
        for s, phases, _ in self.capped_out[actor]:
            self.reserved[s] += phases[firing % len(phases)]

    def produce(self, actor: str, firing: int) -> None:
        tokens = self.tokens
        peaks = self._peaks
        for s, phases in self.outputs[actor]:
            produced = phases[firing % len(phases)]
            level = tokens[s] + produced
            tokens[s] = level
            if self.caps[s] is not None:
                self.reserved[s] -= produced
            if level > peaks[s]:
                peaks[s] = level

    @property
    def peaks(self) -> dict[str, int]:
        """Peak fill level per channel (name-keyed view)."""
        return dict(zip(self.channel_names, self._peaks))


def self_timed_execution(
    graph: CSDFGraph,
    bindings: Mapping | None = None,
    iterations: int = 1,
    cores: int | None = None,
    capacities: Mapping[str, int] | None = None,
) -> TimedResult:
    """Fire actors as soon as tokens and cores allow, for ``iterations``
    full iterations of the repetition vector.

    ``capacities`` bounds channel buffers with blocking writes — the
    input to the buffer/throughput trade-off study (EXT3): tighter
    buffers serialize producers and consumers, stretching the
    steady-state period.

    Raises :class:`~repro.errors.DeadlockError` if the execution stalls
    before completing (e.g. a tokenless cycle or undersized buffers).
    """
    if iterations < 1:
        raise ValueError("need at least one iteration")
    q = concrete_repetition_vector(graph, bindings)
    targets = {name: count * iterations for name, count in q.items()}
    state = _TimedState(graph, bindings, capacities)
    exec_times = {name: graph.actor(name).exec_times for name in targets}
    started = {name: 0 for name in targets}
    completed = {name: 0 for name in targets}
    busy: set[str] = set()
    #: scan list for the ready check; actors leave once fully started
    #: (same relative order as the repetition vector, so scheduling
    #: decisions under a core budget are unchanged).
    startable = list(targets)

    heap: list[tuple[float, int, str, int]] = []
    seq = 0
    now = 0.0
    running = 0
    iteration_ends: list[float] = []
    firings = 0
    # Incremental iteration tracking: instead of min(completed/q) over
    # all actors per event, count the actors still short of the next
    # iteration boundary and advance the boundary when the count hits 0.
    iteration_target = 1
    short_of_target = sum(1 for a in q if completed[a] < q[a])

    def try_start() -> None:
        nonlocal seq, running
        progress = True
        while progress:
            progress = False
            pos = 0
            while pos < len(startable):
                name = startable[pos]
                n = started[name]
                if n >= targets[name]:
                    startable.pop(pos)
                    continue
                if name in busy:
                    pos += 1
                    continue
                if cores is not None and running >= cores:
                    return
                if not state.can_start(name, n):
                    pos += 1
                    continue
                state.consume(name, n)
                times = exec_times[name]
                duration = times[n % len(times)]
                heapq.heappush(heap, (now + duration, seq, name, n))
                seq += 1
                started[name] = n + 1
                busy.add(name)
                running += 1
                progress = True
                pos += 1

    try_start()
    while heap:
        now, _, name, n = heapq.heappop(heap)
        state.produce(name, n)
        done = completed[name] + 1
        completed[name] = done
        busy.discard(name)
        running -= 1
        firings += 1
        if done == q[name] * iteration_target:
            short_of_target -= 1
            while short_of_target == 0:
                iteration_ends.append(now)
                iteration_target += 1
                short_of_target = sum(
                    1 for a in q if completed[a] < q[a] * iteration_target
                )
                if iteration_target > iterations:
                    break
        try_start()

    if any(completed[name] < targets[name] for name in targets):
        blocked = [name for name in targets if completed[name] < targets[name]]
        raise DeadlockError(
            f"self-timed execution stalled after {firings} firings",
            blocked=blocked,
        )
    return TimedResult(
        makespan=now,
        iterations=iterations,
        firings=firings,
        iteration_ends=iteration_ends,
        peaks=dict(state.peaks),
    )


def iteration_latency(
    graph: CSDFGraph,
    bindings: Mapping | None = None,
    cores: int | None = None,
) -> float:
    """Cold-start makespan of a single iteration."""
    return self_timed_execution(graph, bindings, iterations=1, cores=cores).makespan


def throughput_vs_cores(
    graph: CSDFGraph,
    bindings: Mapping | None = None,
    core_budgets: tuple[int, ...] = (1, 2, 4, 8, 16),
    iterations: int = 4,
) -> dict[int, TimedResult]:
    """Self-timed throughput across core budgets (EXT2 bench input)."""
    return {
        cores: self_timed_execution(graph, bindings, iterations=iterations, cores=cores)
        for cores in core_budgets
    }


def min_buffers_for_full_throughput(
    graph: CSDFGraph,
    bindings: Mapping | None = None,
    iterations: int = 6,
    tolerance: float = 1e-6,
    warm_start: bool = True,
    stats: dict | None = None,
) -> dict[str, int]:
    """Smallest per-channel capacities preserving unconstrained
    throughput (a classic buffer-sizing DSE point).

    Strategy: take the unconstrained steady-state period *analytically*
    from Howard's MCR (Reiter: the converged self-timed period equals
    the maximum cycle ratio, so no simulated warm-up estimate is
    needed), start from the peaks of an unconstrained execution (which
    by construction achieve it), then shrink each channel in turn by
    binary search to the smallest capacity that keeps the period within
    ``tolerance``.  Greedy per-channel shrinking is not globally
    optimal (the joint problem is NP-hard) but matches the standard
    practice the paper's tool ecosystem uses, and the result is
    validated by re-execution.

    The measured probe periods are still finite-horizon (``iterations``
    long), so the analytic target is only adopted when the
    unconstrained execution confirms it (measured period within
    ``tolerance`` of the MCR).  Otherwise — horizon too short to
    converge, or a steady state whose per-iteration deltas oscillate
    around the MCR — the measured period stays the target, exactly the
    pre-analytic behaviour: the search is never asked for a period the
    probe executions cannot exhibit, and never *loosened* against a
    probe that measures below the true average.

    With ``warm_start`` (the default) each channel's search range is
    first narrowed from the **symbolic buffer bounds** of
    :func:`repro.csdf.symbuf.symbolic_channel_bounds`: the bound —
    initial tokens plus one iteration's traffic — is often far below
    the unconstrained peak on imbalanced pipelines (where a fast
    producer runs many iterations ahead), and one feasibility probe at
    the bound then replaces ``log2(peak/bound)`` probe executions.
    Each probe is observed before the range shrinks, so for the
    monotone capacity/period curves the probes explore, the warm and
    cold searches return identical capacities
    (``tests/csdf/test_throughput.py`` asserts equality, and the EXT3
    bench records the probes saved).  ``stats``, when given a dict, is
    filled with ``probes`` / ``probes_saved`` counters.
    """
    from .mcr import max_cycle_ratio

    unconstrained = self_timed_execution(graph, bindings, iterations=iterations)
    target = unconstrained.iteration_period
    mcr = max_cycle_ratio(graph, bindings)
    if abs(target - mcr) <= tolerance:
        target = mcr  # confirmed converged: use the exact analytic value
    capacities = dict(unconstrained.peaks)
    counters = {"probes": 0, "probes_saved": 0}

    def period_with(caps: Mapping[str, int]) -> float:
        from ..errors import DeadlockError

        counters["probes"] += 1
        try:
            result = self_timed_execution(
                graph, bindings, iterations=iterations, capacities=caps
            )
        except DeadlockError:
            return float("inf")
        return result.iteration_period

    warm_bounds = _symbolic_warm_bounds(graph, bindings) if warm_start else {}

    for name in sorted(capacities):
        lo, hi = 0, capacities[name]
        warm = warm_bounds.get(name)
        if warm is not None and warm < hi:
            probe = dict(capacities)
            probe[name] = warm
            if period_with(probe) <= target + tolerance:
                # The bound sustains full throughput: search below it.
                counters["probes_saved"] += max(
                    0, hi.bit_length() - warm.bit_length() - 1
                )
                hi = warm
        while lo < hi:
            mid = (lo + hi) // 2
            probe = dict(capacities)
            probe[name] = mid
            if period_with(probe) <= target + tolerance:
                hi = mid
            else:
                lo = mid + 1
        capacities[name] = hi
    if stats is not None:
        stats.update(counters)
    return capacities


def _symbolic_warm_bounds(
    graph: CSDFGraph, bindings: Mapping | None
) -> dict[str, int]:
    """Per-channel warm-start capacities from the symbolic bounds,
    evaluated at ``bindings``.  Best-effort: graphs the symbolic
    analysis cannot cover (or valuations it cannot evaluate) simply
    fall back to the cold search range."""
    from ..errors import ReproError
    from ..symbolic import InconsistentRatesError
    from .symbuf import symbolic_channel_bounds

    try:
        bounds = symbolic_channel_bounds(graph)
    except (ReproError, InconsistentRatesError):
        return {}
    warm: dict[str, int] = {}
    for name, poly in bounds.items():
        try:
            value = poly.evaluate(bindings or {})
        except (KeyError, ValueError, ZeroDivisionError):
            continue
        if value >= 0:
            warm[name] = int(value) + (0 if value.denominator == 1 else 1)
    return warm


def buffer_throughput_tradeoff(
    graph: CSDFGraph,
    bindings: Mapping | None = None,
    scales: tuple[float, ...] = (1.0, 1.5, 2.0, 4.0),
    iterations: int = 4,
) -> list[tuple[int, TimedResult]]:
    """The classic buffer-size / throughput trade-off (EXT3).

    Starting from the minimal single-processor capacities (buffer peaks
    of the buffer-minimizing schedule), scale every channel's capacity
    by each factor and measure the steady-state period under blocking
    writes.  Returns ``(total_buffer, TimedResult)`` pairs sorted by
    buffer budget: larger budgets never slow the pipeline down, and
    throughput saturates once the bottleneck actor dominates.
    """
    from .buffers import minimal_buffer_schedule

    _, minimal = minimal_buffer_schedule(graph, bindings)
    out: list[tuple[int, TimedResult]] = []
    for scale in scales:
        capacities = {
            name: max(1, int(peak * scale)) for name, peak in minimal.items()
        }
        result = self_timed_execution(
            graph, bindings, iterations=iterations, capacities=capacities
        )
        out.append((sum(capacities.values()), result))
    return out
