"""The CSDF graph container ``G = <A, E>``.

Builds the directed multigraph of actors and channels, validates its
structure, and exposes the derived quantities the analyses need (cycle
lengths ``tau_j``, per-cycle totals, networkx views for cycle
detection).  The parametric analyses live in
:mod:`repro.csdf.analysis`; this module is purely structural.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import networkx as nx

from ..cache import bump_version, ensure_mutable, freeze, is_frozen
from ..errors import GraphConstructionError
from .actor import Actor, ExecTime
from .channel import Channel
from .rates import RateLike, lcm_int


class CSDFGraph:
    """A Cyclo-Static Dataflow graph.

    Example — Fig. 1 of the paper::

        g = CSDFGraph("fig1")
        g.add_actor("a1")
        g.add_actor("a2")
        g.add_actor("a3")
        g.add_channel("e1", "a1", "a2", production=[1, 0, 1], consumption=[1, 1])
        g.add_channel("e2", "a2", "a3", production=[2], consumption=[1, 1, 2],
                      initial_tokens=2)
        g.add_channel("e3", "a3", "a1", production=[0, 2], consumption=[1])
    """

    def __init__(self, name: str = "csdf"):
        self.name = name
        self._actors: dict[str, Actor] = {}
        self._channels: dict[str, Channel] = {}

    # -- construction ---------------------------------------------------
    def add_actor(self, name: str, exec_time: ExecTime = 1.0, function=None) -> Actor:
        """Create and register an actor; returns it."""
        ensure_mutable(self)
        if name in self._actors:
            raise GraphConstructionError(f"duplicate actor name {name!r}")
        actor = Actor(name, exec_time=exec_time, function=function)
        actor._owner = self
        self._actors[name] = actor
        bump_version(self, kind="structural", scope=(name,))
        return actor

    def add_channel(
        self,
        name: str | None,
        src: str,
        dst: str,
        production: RateLike = 1,
        consumption: RateLike = 1,
        initial_tokens: int = 0,
    ) -> Channel:
        """Create and register a channel; returns it.

        ``name=None`` auto-generates the first free ``e<k>``.
        """
        ensure_mutable(self)
        if name is None:
            k = len(self._channels) + 1
            while f"e{k}" in self._channels:  # removals leave gaps
                k += 1
            name = f"e{k}"
        if name in self._channels:
            raise GraphConstructionError(f"duplicate channel name {name!r}")
        for endpoint in (src, dst):
            if endpoint not in self._actors:
                raise GraphConstructionError(
                    f"channel {name!r}: unknown actor {endpoint!r}"
                )
        channel = Channel(name, src, dst, production, consumption, initial_tokens)
        channel._owner = self
        self._channels[name] = channel
        bump_version(self, kind="structural", scope=(name, src, dst))
        return channel

    def remove_channel(self, name: str) -> Channel:
        """Remove and return a channel (structural mutation)."""
        ensure_mutable(self)
        if name not in self._channels:
            raise GraphConstructionError(f"unknown channel {name!r}")
        channel = self._channels[name]
        bump_version(self, kind="structural", scope=(name, channel.src, channel.dst))
        del self._channels[name]
        channel._owner = None
        return channel

    def remove_actor(self, name: str) -> Actor:
        """Remove and return an actor plus every attached channel
        (structural mutation)."""
        ensure_mutable(self)
        if name not in self._actors:
            raise GraphConstructionError(f"unknown actor {name!r}")
        attached = [c.name for c in self._channels.values()
                    if c.src == name or c.dst == name]
        bump_version(self, kind="structural", scope=(name, *attached))
        for channel_name in attached:
            channel = self._channels.pop(channel_name)
            channel._owner = None
        actor = self._actors.pop(name)
        actor._owner = None
        return actor

    def freeze(self) -> "CSDFGraph":
        """Reject all further structural mutation (see
        :func:`repro.cache.freeze`); returns ``self`` for chaining."""
        freeze(self)
        return self

    @property
    def frozen(self) -> bool:
        return is_frozen(self)

    # -- access -----------------------------------------------------------
    @property
    def actors(self) -> dict[str, Actor]:
        return dict(self._actors)

    @property
    def channels(self) -> dict[str, Channel]:
        return dict(self._channels)

    def actor(self, name: str) -> Actor:
        return self._actors[name]

    def channel(self, name: str) -> Channel:
        return self._channels[name]

    def actor_names(self) -> list[str]:
        return list(self._actors)

    def in_channels(self, actor: str) -> list[Channel]:
        return [c for c in self._channels.values() if c.dst == actor]

    def out_channels(self, actor: str) -> list[Channel]:
        return [c for c in self._channels.values() if c.src == actor]

    # -- derived structure ---------------------------------------------------
    def tau(self, actor: str) -> int:
        """Cycle length ``tau_j``: lcm of the lengths of all rate
        sequences attached to the actor, and of its execution-time
        sequence."""
        if actor not in self._actors:
            raise KeyError(actor)
        length = len(self._actors[actor].exec_times)
        for channel in self._channels.values():
            if channel.src == actor:
                length = lcm_int(length, len(channel.production))
            if channel.dst == actor:
                length = lcm_int(length, len(channel.consumption))
        return length

    def taus(self) -> dict[str, int]:
        return {name: self.tau(name) for name in self._actors}

    def parameters(self) -> set[str]:
        """All parameter names occurring in any rate."""
        names: set[str] = set()
        for channel in self._channels.values():
            names |= channel.variables()
        return names

    def is_parametric(self) -> bool:
        return bool(self.parameters())

    def to_networkx(self) -> nx.MultiDiGraph:
        """Directed multigraph view (channel objects on edge data)."""
        g = nx.MultiDiGraph(name=self.name)
        g.add_nodes_from(self._actors)
        for channel in self._channels.values():
            g.add_edge(channel.src, channel.dst, key=channel.name, channel=channel)
        return g

    def is_connected(self) -> bool:
        """Weak connectivity (required for a unique repetition vector)."""
        if not self._actors:
            return True
        return nx.is_weakly_connected(self.to_networkx())

    def directed_cycles(self) -> list[list[str]]:
        """Simple directed cycles (actor name lists); deadlock suspects."""
        return [cycle for cycle in nx.simple_cycles(self.to_networkx())]

    def bind(self, bindings: Mapping) -> "CSDFGraph":
        """A copy of the graph with parameters substituted."""
        bound = CSDFGraph(f"{self.name}@bound")
        for actor in self._actors.values():
            bound.add_actor(actor.name, exec_time=actor.exec_times, function=actor.function)
        for ch in self._channels.values():
            bound.add_channel(
                ch.name,
                ch.src,
                ch.dst,
                production=ch.production.bind(bindings),
                consumption=ch.consumption.bind(bindings),
                initial_tokens=ch.initial_tokens,
            )
        return bound

    # -- summaries ---------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"CSDFGraph({self.name!r}, actors={len(self._actors)}, "
            f"channels={len(self._channels)})"
        )

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        lines = [f"CSDF graph {self.name!r}: "
                 f"{len(self._actors)} actors, {len(self._channels)} channels"]
        for actor in self._actors.values():
            lines.append(f"  actor {actor.name} (tau={self.tau(actor.name)})")
        for ch in self._channels.values():
            init = f", init={ch.initial_tokens}" if ch.initial_tokens else ""
            lines.append(
                f"  {ch.name}: {ch.src} {ch.production} -> "
                f"{ch.consumption} {ch.dst}{init}"
            )
        return "\n".join(lines)


def chain(name: str, actor_names: Iterable[str], rates: Iterable[tuple] | None = None) -> CSDFGraph:
    """Convenience constructor for a pipeline ``a -> b -> c -> ...``.

    ``rates`` optionally gives ``(production, consumption)`` per hop;
    defaults to 1/1 everywhere.
    """
    graph = CSDFGraph(name)
    names = list(actor_names)
    for actor_name in names:
        graph.add_actor(actor_name)
    hop_rates = list(rates) if rates is not None else [(1, 1)] * (len(names) - 1)
    if len(hop_rates) != len(names) - 1:
        raise GraphConstructionError(
            f"chain {name!r}: {len(names) - 1} hops but {len(hop_rates)} rate pairs"
        )
    for (src, dst), (production, consumption) in zip(zip(names, names[1:]), hop_rates):
        graph.add_channel(None, src, dst, production, consumption)
    return graph
