"""Calendar-queue event scheduler for the array-state backend.

A calendar queue (Brown 1988) buckets future events by time the way a
desk calendar buckets appointments by day: ``nbuckets`` "days" of
``width`` model-time each, wrapping around year after year.  With the
width matched to the typical inter-event gap, each bucket holds O(1)
events, so ``push`` is an append into the right day and ``pop`` scans
the current day — O(1) amortized, against the O(log n) of a binary
heap.  The win only materializes at scale; at the queue sizes a small
graph produces, CPython's C ``heapq`` is unbeatable, which drives the
mode policy below.

Contract
--------
:class:`CalendarQueue` is a drop-in for
:class:`repro.csdf.eventloop.EventQueue`: ``push(time, payload)``
returns a monotonically increasing sequence number, ``pop`` returns
the earliest live ``(time, seq, payload)`` with the exact ``(time,
seq)`` FIFO tie-break (equal times pop in push order), ``cancel(seq)``
deletes a still-queued event and raises ``ValueError`` on a dead or
unknown sequence number, and ``len``/truthiness count live events.
The executors can therefore pick either queue without changing a
single scheduling decision; the property suite
(``tests/csdf/test_scheduler_primitives.py``) drives both against one
sorted-list oracle.

Bucket policy
-------------
* The queue **starts in heap mode** and converts to a calendar only
  once the live count exceeds ``calendar_threshold`` (default 128) —
  below that, bucket bookkeeping costs more than ``heapq`` saves.  In
  heap mode the hot path is bare ``heappush``/``heappop`` plus an
  integer counter; cancellation is lazy (a dead set consulted only
  when non-empty), validated by an O(n) heap scan since cancel is the
  rare operation.
* On conversion (and on each doubling resize) the width is
  re-estimated as three times the mean gap between the distinct event
  times currently queued — the classic rule of thumb that keeps the
  occupied day span a few buckets wide.
* The estimate **degenerates** when the queued times cannot span a
  calendar: fewer than two distinct times (e.g. a same-timestamp
  burst), a zero/negative mean gap, or a non-finite spread.  A
  degenerate width falls back to the heap and retries once the queue
  has doubled again, so pathological workloads simply keep heap
  behaviour instead of an unbounded bucket scan.
* The calendar resizes to twice the bucket count when the live count
  outgrows it (amortized O(1)), and reverts to heap mode when the
  live count falls back below half the threshold.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Any

__all__ = ["CalendarQueue"]

#: Width multiplier over the mean inter-event gap (Brown's rule of
#: thumb: a day should hold a few events, not fractions of one).
_WIDTH_FACTOR = 3.0


class CalendarQueue:
    """Timed event queue with calendar buckets and a heap fallback.

    Parameters
    ----------
    calendar_threshold:
        Live-event count above which the queue converts from heap mode
        to calendar buckets.  The default keeps small executions on
        the C heap; tests force conversion with a small threshold.
    bucket_width:
        Fixed bucket width override (model time per day).  ``None``
        (the default) estimates the width from the queued event times
        at conversion/resize.
    """

    __slots__ = ("_seq", "_count", "_heap", "_dead", "_buckets", "_mask",
                 "_width", "_bucket_index", "_bucket_top", "_times",
                 "_threshold", "_convert_at", "_forced_width")

    def __init__(self, calendar_threshold: int = 128,
                 bucket_width: float | None = None) -> None:
        if bucket_width is not None and not bucket_width > 0:
            raise ValueError(f"bucket_width must be > 0, got {bucket_width}")
        self._seq = 0
        self._count = 0
        self._heap: list[tuple[float, int, Any]] = []
        self._dead: set[int] = set()
        self._buckets: list[list[tuple[float, int, Any]]] | None = None
        self._mask = 0
        self._width = 0.0
        self._bucket_index = 0
        self._bucket_top = 0.0
        self._times: dict[int, float] = {}
        self._threshold = max(0, calendar_threshold)
        self._convert_at = max(1, calendar_threshold)
        self._forced_width = bucket_width

    # -- public contract (mirrors EventQueue) ---------------------------
    @property
    def mode(self) -> str:
        """``"heap"`` or ``"calendar"`` — the active storage layout."""
        return "heap" if self._buckets is None else "calendar"

    def push(self, time: float, payload: Any) -> int:
        seq = self._seq
        self._seq = seq + 1
        count = self._count + 1
        self._count = count
        if self._buckets is None:
            heappush(self._heap, (time, seq, payload))
            if count >= self._convert_at:
                self._enter_calendar()
        else:
            self._times[seq] = time
            day = int(time // self._width)
            self._buckets[day & self._mask].append((time, seq, payload))
            if time < self._bucket_top - self._width:
                # Pushed before the current scan day: rewind the scan
                # pointer so the new earliest event is not lapped.
                self._bucket_index = day & self._mask
                self._bucket_top = (day + 1) * self._width
            if count > 2 * len(self._buckets):
                self._rebuild(calendar=True)
        return seq

    def cancel(self, seq: int) -> None:
        """Delete the still-queued event ``seq``.

        Raises ``ValueError`` when ``seq`` is not live (already popped,
        already cancelled, or never issued) — same validated contract
        as :meth:`EventQueue.cancel`.
        """
        if self._buckets is None:
            # Heap mode keeps no per-event index (cancel is the rare
            # operation); validate by scanning the live entries.
            if seq in self._dead or not any(
                entry[1] == seq for entry in self._heap
            ):
                raise ValueError(
                    f"cannot cancel event {seq}: not queued (already "
                    f"popped, already cancelled, or never issued)"
                )
            self._dead.add(seq)
            self._count -= 1
            return
        time = self._times.pop(seq, None)
        if time is None:
            raise ValueError(
                f"cannot cancel event {seq}: not queued (already "
                f"popped, already cancelled, or never issued)"
            )
        self._count -= 1
        bucket = self._buckets[int(time // self._width) & self._mask]
        for index, entry in enumerate(bucket):
            if entry[1] == seq:
                del bucket[index]
                return
        raise AssertionError(f"live event {seq} missing from its bucket")

    def pop(self) -> tuple[float, int, Any]:
        """Remove and return the earliest live ``(time, seq, payload)``.

        Raises ``IndexError`` when no live event is queued.
        """
        if self._buckets is None:
            entry = heappop(self._heap)  # IndexError on empty
            dead = self._dead
            if dead:
                while entry[1] in dead:
                    dead.remove(entry[1])
                    entry = heappop(self._heap)
            self._count -= 1
            return entry
        if not self._count:
            raise IndexError("pop from an empty CalendarQueue")
        entry = self._pop_calendar()
        self._count -= 1
        del self._times[entry[1]]
        if self._count < self._threshold // 2:
            self._rebuild(calendar=False)
        return entry

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0

    # -- calendar internals ---------------------------------------------
    def _entries(self) -> list[tuple[float, int, Any]]:
        """Live entries, regardless of mode."""
        if self._buckets is None:
            dead = self._dead
            if dead:
                return [e for e in self._heap if e[1] not in dead]
            return list(self._heap)
        return [entry for bucket in self._buckets for entry in bucket]

    def _estimate_width(self, entries: list) -> float | None:
        """Bucket width from the mean gap of the queued distinct times;
        ``None`` when the estimate degenerates (see module docstring)."""
        if self._forced_width is not None:
            return self._forced_width
        distinct = sorted({entry[0] for entry in entries})
        if len(distinct) < 2:
            return None
        span = distinct[-1] - distinct[0]
        width = _WIDTH_FACTOR * span / (len(distinct) - 1)
        if not width > 0.0 or width == float("inf") or span == float("inf"):
            return None
        return width

    def _enter_calendar(self) -> None:
        entries = self._entries()
        width = self._estimate_width(entries)
        if width is None:
            # Degenerate width: stay on the heap, try again once the
            # queue has doubled (the next burst may be schedulable).
            self._convert_at = max(self._convert_at * 2, 2)
            return
        self._install(entries, width)
        self._heap = []
        self._dead = set()

    def _rebuild(self, calendar: bool) -> None:
        """Resize the calendar (grow) or revert to the heap (shrink)."""
        entries = self._entries()
        if calendar:
            width = self._estimate_width(entries)
            if width is None:
                width = self._width  # keep the old estimate; still exact
            self._install(entries, width)
        else:
            self._buckets = None
            self._times = {}
            self._heap = entries
            self._dead = set()
            heapify(self._heap)
            self._convert_at = max(1, self._threshold)

    def _install(self, entries: list, width: float) -> None:
        nbuckets = 1 << max(2, len(entries)).bit_length()
        mask = nbuckets - 1
        buckets: list[list] = [[] for _ in range(nbuckets)]
        for entry in entries:
            buckets[int(entry[0] // width) & mask].append(entry)
        self._buckets = buckets
        self._mask = mask
        self._width = width
        self._times = {entry[1]: entry[0] for entry in entries}
        start = min((entry[0] for entry in entries), default=0.0)
        day = int(start // width)
        self._bucket_index = day & mask
        self._bucket_top = (day + 1) * width

    def _pop_calendar(self) -> tuple[float, int, Any]:
        buckets = self._buckets
        assert buckets is not None
        mask, width = self._mask, self._width
        index, top = self._bucket_index, self._bucket_top
        for _ in range(len(buckets)):
            bucket = buckets[index]
            best = None
            if bucket:
                for entry in bucket:
                    if entry[0] < top and (best is None or entry < best):
                        best = entry
            if best is not None:
                bucket.remove(best)
                # Re-anchor the scan day exactly from the popped time
                # (accumulating ``top += width`` would drift).
                day = int(best[0] // width)
                self._bucket_index = day & mask
                self._bucket_top = (day + 1) * width
                return best
            index = (index + 1) & mask
            top += width
        # A full lap found nothing within its day: the queue is sparse
        # relative to the calendar year.  Jump straight to the global
        # minimum (the standard calendar-queue escape hatch).
        best = None
        for bucket in buckets:
            for entry in bucket:
                if best is None or entry < best:
                    best = entry
        assert best is not None
        day = int(best[0] // width)
        buckets[day & mask].remove(best)
        self._bucket_index = day & mask
        self._bucket_top = (day + 1) * width
        return best
