"""Token-count simulation of CSDF graphs.

This is the *untimed* operational semantics: channel fill levels and
firing counters, no data values and no clock.  It underpins schedule
construction (:mod:`repro.csdf.schedule`), buffer sizing
(:mod:`repro.csdf.buffers`) and the liveness analysis of TPDF
(:mod:`repro.tpdf.liveness`).  Timed, data-carrying execution lives in
:mod:`repro.sim`.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from ..errors import SimulationError
from .graph import CSDFGraph


class TokenState:
    """Mutable token-count state of a (bound) CSDF graph.

    Parameters are evaluated once at construction, so stepping is pure
    integer arithmetic.

    Attributes
    ----------
    tokens:
        Current fill level per channel name.
    fired:
        Firing counter per actor name (phase = ``fired % tau``).
    peak:
        Highest fill level observed per channel (includes the initial
        tokens), i.e. the buffer capacity this execution requires.
    """

    __slots__ = ("graph", "tokens", "fired", "peak", "_prod", "_cons", "_in", "_out")

    def __init__(self, graph: CSDFGraph, bindings: Mapping | None = None):
        self.graph = graph
        self.tokens: dict[str, int] = {}
        self.peak: dict[str, int] = {}
        self._prod: dict[str, tuple[int, ...]] = {}
        self._cons: dict[str, tuple[int, ...]] = {}
        self._in: dict[str, list[str]] = {name: [] for name in graph.actors}
        self._out: dict[str, list[str]] = {name: [] for name in graph.actors}
        for channel in graph.channels.values():
            self.tokens[channel.name] = channel.initial_tokens
            self.peak[channel.name] = channel.initial_tokens
            self._prod[channel.name] = channel.production.as_ints(bindings)
            self._cons[channel.name] = channel.consumption.as_ints(bindings)
            self._out[channel.src].append(channel.name)
            self._in[channel.dst].append(channel.name)
        self.fired: dict[str, int] = {name: 0 for name in graph.actors}

    # -- firing rules -----------------------------------------------------
    def demand(self, actor: str, channel: str) -> int:
        """Tokens the next firing of ``actor`` consumes from ``channel``."""
        phases = self._cons[channel]
        return phases[self.fired[actor] % len(phases)]

    def supply(self, actor: str, channel: str) -> int:
        """Tokens the next firing of ``actor`` produces on ``channel``."""
        phases = self._prod[channel]
        return phases[self.fired[actor] % len(phases)]

    def can_fire(self, actor: str) -> bool:
        """CSDF firing rule: every input channel holds enough tokens."""
        return all(
            self.tokens[channel] >= self.demand(actor, channel)
            for channel in self._in[actor]
        )

    def blocked_on(self, actor: str) -> list[str]:
        """Input channels currently preventing the actor from firing."""
        return [
            channel
            for channel in self._in[actor]
            if self.tokens[channel] < self.demand(actor, channel)
        ]

    def fire(self, actor: str) -> None:
        """Fire one invocation (consume inputs, then produce outputs)."""
        if actor not in self.fired:
            raise KeyError(f"unknown actor {actor!r}")
        for channel in self._in[actor]:
            need = self.demand(actor, channel)
            if self.tokens[channel] < need:
                raise SimulationError(
                    f"firing {actor!r} underflows channel {channel!r}: "
                    f"needs {need}, holds {self.tokens[channel]}"
                )
            self.tokens[channel] -= need
        # Self-loops: the consume above already ran for in-channels; a
        # channel that is both in and out of the actor sees consume
        # before produce, matching an atomic firing.
        for channel in self._out[actor]:
            self.tokens[channel] += self.supply(actor, channel)
            if self.tokens[channel] > self.peak[channel]:
                self.peak[channel] = self.tokens[channel]
        self.fired[actor] += 1

    def run(self, sequence: Iterable[str]) -> None:
        """Fire a sequence of actors, failing fast on underflow."""
        for actor in sequence:
            self.fire(actor)

    # -- views ----------------------------------------------------------
    def fireable(self, actors: Iterable[str] | None = None) -> list[str]:
        """Actors (subset or all) whose firing rule currently holds."""
        pool = actors if actors is not None else list(self.fired)
        return [actor for actor in pool if self.can_fire(actor)]

    def total_tokens(self) -> int:
        return sum(self.tokens.values())

    def matches_initial_state(self) -> bool:
        """True when every channel is back to its initial fill level."""
        return all(
            self.tokens[channel.name] == channel.initial_tokens
            for channel in self.graph.channels.values()
        )

    def copy(self) -> "TokenState":
        clone = object.__new__(TokenState)
        clone.graph = self.graph
        clone.tokens = dict(self.tokens)
        clone.peak = dict(self.peak)
        clone.fired = dict(self.fired)
        clone._prod = self._prod
        clone._cons = self._cons
        clone._in = self._in
        clone._out = self._out
        return clone

    def __repr__(self) -> str:
        return f"TokenState(tokens={self.tokens}, fired={self.fired})"
