"""CSDF actors.

An actor is an iterated task: its n-th firing runs phase ``n mod tau``
of its cyclic execution sequence and moves tokens on its channels
according to the rate sequences attached to the channel ends (see
:mod:`repro.csdf.rates`).

Execution times are attached to actors (not part of the MoC itself) so
the scheduling and simulation layers can model latency: either a single
number applied to every phase, or one number per phase.
"""

from __future__ import annotations

from typing import Sequence, Union

ExecTime = Union[float, int, Sequence[float]]


def _validate_exec_times(name: str, exec_time: ExecTime) -> tuple[float, ...]:
    if isinstance(exec_time, (int, float)):
        times: tuple[float, ...] = (float(exec_time),)
    else:
        times = tuple(float(t) for t in exec_time)
        if not times:
            raise ValueError(f"actor {name!r}: empty execution-time sequence")
    for t in times:
        if t < 0:
            raise ValueError(f"actor {name!r}: negative execution time {t}")
    return times


class Actor:
    """A CSDF actor (computation node).

    Parameters
    ----------
    name:
        Unique identifier within the graph.
    exec_time:
        Model execution time per firing: a scalar, or a sequence giving
        one duration per phase (cyclically indexed).  Defaults to 1.0.
    function:
        Optional Python callable implementing the actor for data-level
        simulation (:mod:`repro.sim`).  Analyses ignore it.
    """

    __slots__ = ("name", "_exec_times", "function", "_owner")

    def __init__(self, name: str, exec_time: ExecTime = 1.0, function=None):
        if not name:
            raise ValueError("actor name must be non-empty")
        self.name = name
        #: Owning graph; set by ``CSDFGraph.add_actor`` so in-place
        #: edits propagate a cache-invalidation bump.
        self._owner = None
        self._exec_times = _validate_exec_times(name, exec_time)
        self.function = function

    def exec_time(self, firing: int = 0) -> float:
        """Execution time of the given firing (phase-cyclic)."""
        return self._exec_times[firing % len(self._exec_times)]

    @property
    def exec_times(self) -> tuple[float, ...]:
        return self._exec_times

    def set_exec_time(self, value: ExecTime) -> None:
        """Replace the execution-time sequence, invalidating cached
        analyses of the owning graph.

        When the number of phases is unchanged this is recorded as a
        *binding-only* mutation scoped to this actor — timings feed the
        timed analyses (MCR, throughput) but not the rate algebra, so
        the repetition vector, liveness verdict and buffer bounds are
        carried forward.  A phase-count change alters ``tau`` and hence
        the repetition vector itself, so it is recorded structurally.
        """
        times = _validate_exec_times(self.name, value)
        if self._owner is not None:
            from ..cache import bump_version

            kind = "binding" if len(times) == len(self._exec_times) else "structural"
            # Bump before assigning: frozen graphs raise, actor intact.
            bump_version(self._owner, kind=kind, scope=(self.name,))
        self._exec_times = times

    def __repr__(self) -> str:
        return f"Actor({self.name!r})"

    def __str__(self) -> str:
        return self.name
