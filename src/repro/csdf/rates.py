"""Cyclic rate sequences (the ``[x_j(0), ..., x_j(tau_j - 1)]`` of CSDF).

A :class:`RateSequence` is the cyclo-static production/consumption
pattern attached to one end of a channel.  Entries are
:class:`~repro.symbolic.poly.Poly`, so the same class serves plain CSDF
(integer entries) and TPDF (parametric entries such as ``beta*(N+L)``).

The class knows how to compute the quantities the analyses need:

``rate(n)``
    tokens moved by the n-th firing (``x_j(n mod tau_j)``),
``cycle_total()``
    tokens moved over one full cycle (``X_j(tau_j)``),
``cumulative(n)``
    tokens moved by the first ``n`` firings (``X_j(n)``), for concrete
    or symbolic ``n`` (Def. 5 evaluates ``Y_i(q^L_i)`` where the local
    solution can be parametric).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence, Union

from ..errors import SymbolicRateError
from ..symbolic import Poly

RateLike = Union["RateSequence", Poly, int, Sequence]


class RateSequence:
    """An immutable cyclic sequence of non-negative symbolic rates."""

    __slots__ = ("_entries",)

    def __init__(self, entries: Iterable):
        coerced = tuple(Poly.coerce(entry) for entry in entries)
        if not coerced:
            raise ValueError("a rate sequence needs at least one phase")
        for entry in coerced:
            if not entry.has_nonnegative_coefficients():
                raise ValueError(
                    f"rate {entry} may become negative for some parameter values"
                )
        self._entries = coerced

    # -- constructors ---------------------------------------------------
    @staticmethod
    def of(value: RateLike) -> "RateSequence":
        """Coerce scalars, params, polys, and sequences into a RateSequence."""
        if isinstance(value, RateSequence):
            return value
        if isinstance(value, (list, tuple)):
            return RateSequence(value)
        return RateSequence([value])

    # -- basic views -----------------------------------------------------
    @property
    def entries(self) -> tuple[Poly, ...]:
        return self._entries

    def __len__(self) -> int:
        """The cycle length tau contributed by this sequence."""
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    def __getitem__(self, index: int) -> Poly:
        return self._entries[index % len(self._entries)]

    def rate(self, n: int) -> Poly:
        """Tokens moved by the n-th firing (0-based)."""
        return self._entries[n % len(self._entries)]

    def is_uniform(self) -> bool:
        """True when every phase moves the same token count."""
        first = self._entries[0]
        return all(entry == first for entry in self._entries[1:])

    def is_constant(self) -> bool:
        """True when no phase depends on a parameter."""
        return all(entry.is_const() for entry in self._entries)

    def cycle_total(self) -> Poly:
        """``X(tau)``: tokens moved across one full cycle."""
        total = Poly()
        for entry in self._entries:
            total = total + entry
        return total

    # -- cumulative rates --------------------------------------------------
    def cumulative(self, n: int) -> Poly:
        """``X(n)`` for a concrete firing count ``n >= 0``."""
        if n < 0:
            raise ValueError(f"firing count must be non-negative, got {n}")
        tau = len(self._entries)
        full_cycles, remainder = divmod(n, tau)
        total = self.cycle_total().scale(full_cycles) if full_cycles else Poly()
        for i in range(remainder):
            total = total + self._entries[i]
        return total

    def cumulative_symbolic(self, n: Poly) -> Poly:
        """``X(n)`` for a symbolic firing count.

        Decidable when (i) ``n`` is actually a constant, (ii) the
        sequence is uniform (``X(n) = n * x``), or (iii) ``n`` is an
        integer-polynomial multiple of the cycle length
        (``X(k*tau) = k * X(tau)``).  Anything else raises
        :class:`~repro.errors.SymbolicRateError` — the phase inside the
        cycle would depend on the parameter valuation.
        """
        n = Poly.coerce(n)
        if n.is_const():
            value = n.const_value()
            if value.denominator != 1 or value < 0:
                raise SymbolicRateError(f"invalid firing count {n}")
            return self.cumulative(int(value))
        if self.is_uniform():
            return n * self._entries[0]
        tau = len(self._entries)
        cycles = n.try_div(Poly.const(tau))
        if cycles is not None and cycles.coefficient_lcm_denominator() == 1:
            return cycles * self.cycle_total()
        raise SymbolicRateError(
            f"cannot evaluate cumulative rate of {self} at symbolic count {n}: "
            f"the phase within the length-{tau} cycle depends on the parameters"
        )

    def bind(self, bindings: Mapping) -> "RateSequence":
        """Substitute parameters, producing a (possibly still symbolic)
        sequence."""
        return RateSequence([entry.subs(bindings) for entry in self._entries])

    def as_ints(self, bindings: Mapping | None = None) -> tuple[int, ...]:
        """Concrete integer phases; ``bindings`` required when symbolic."""
        out = []
        for entry in self._entries:
            value = entry.evaluate(bindings or {})
            if value.denominator != 1 or value < 0:
                raise ValueError(f"rate {entry} is not a non-negative integer: {value}")
            out.append(int(value))
        return tuple(out)

    def variables(self) -> set[str]:
        names: set[str] = set()
        for entry in self._entries:
            names |= entry.variables()
        return names

    # -- identity -----------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, RateSequence):
            return self._entries == other._entries
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("RateSequence", self._entries))

    def __repr__(self) -> str:
        return f"RateSequence({list(map(str, self._entries))})"

    def __str__(self) -> str:
        return "[" + ",".join(str(entry) for entry in self._entries) + "]"


def lcm_int(a: int, b: int) -> int:
    """Least common multiple of two positive integers."""
    from math import gcd

    return a * b // gcd(a, b)
