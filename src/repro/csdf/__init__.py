"""Cyclo-Static Dataflow (CSDF): the base model TPDF extends.

Implements the reference MoC of Bilsen et al. (1995) as used by the
paper: graphs of actors with cyclic rate sequences, the topology
matrix / repetition-vector analysis (Theorem 1), PASS construction by
symbolic execution, token-count simulation, and buffer sizing.  CSDF is
also the baseline the evaluation compares against (Fig. 8).
"""

from .actor import Actor
from .channel import Channel
from .graph import CSDFGraph, chain
from .rates import RateSequence
from .analysis import (
    base_solution,
    concrete_repetition_vector,
    is_consistent,
    iteration_token_totals,
    repetition_vector,
    topology_matrix,
)
from .schedule import (
    POLICIES,
    SequentialSchedule,
    find_sequential_schedule,
    is_live,
    validate_schedule,
)
from .simulation import TokenState
from .buffers import (
    bounded_feasible,
    minimal_buffer_schedule,
    schedule_buffer_sizes,
    total_buffer_size,
)
from .eventloop import EventQueue, ReadyWorklist
from .calqueue import CalendarQueue
from .statearrays import ArrayState, array_state, self_timed_execution_arrays
from .batchexec import batch_tables, self_timed_execution_batch
from .throughput import (
    BACKENDS,
    TimedResult,
    buffer_throughput_tradeoff,
    capacity_floors,
    iteration_latency,
    min_buffers_for_full_throughput,
    self_timed_execution,
    self_timed_execution_reference,
    throughput_vs_cores,
    validate_capacities,
)
from .sdf import expand_to_hsdf, hsdf_is_faithful, is_sdf
from .symbuf import (
    bound_is_tight_for_single_appearance,
    symbolic_channel_bounds,
    symbolic_total_bound,
)
from .mcr import max_cycle_ratio, throughput_bound
from .parametric import (
    MCRCandidate,
    ParamDomain,
    PiecewiseMCR,
    Region,
    parametric_mcr,
    verify_piecewise,
)

__all__ = [
    "Actor",
    "Channel",
    "CSDFGraph",
    "chain",
    "RateSequence",
    "topology_matrix",
    "base_solution",
    "repetition_vector",
    "concrete_repetition_vector",
    "is_consistent",
    "iteration_token_totals",
    "SequentialSchedule",
    "find_sequential_schedule",
    "validate_schedule",
    "is_live",
    "POLICIES",
    "TokenState",
    "schedule_buffer_sizes",
    "minimal_buffer_schedule",
    "total_buffer_size",
    "bounded_feasible",
    "TimedResult",
    "buffer_throughput_tradeoff",
    "min_buffers_for_full_throughput",
    "self_timed_execution",
    "self_timed_execution_reference",
    "self_timed_execution_arrays",
    "self_timed_execution_batch",
    "batch_tables",
    "capacity_floors",
    "validate_capacities",
    "BACKENDS",
    "EventQueue",
    "ReadyWorklist",
    "CalendarQueue",
    "ArrayState",
    "array_state",
    "iteration_latency",
    "throughput_vs_cores",
    "expand_to_hsdf",
    "hsdf_is_faithful",
    "is_sdf",
    "symbolic_channel_bounds",
    "symbolic_total_bound",
    "bound_is_tight_for_single_appearance",
    "max_cycle_ratio",
    "throughput_bound",
    "ParamDomain",
    "MCRCandidate",
    "Region",
    "PiecewiseMCR",
    "parametric_mcr",
    "verify_piecewise",
]
