"""Buffer sizing for CSDF graphs.

Computes per-channel buffer capacities, the quantity compared in Fig. 8
of the paper (minimum buffer size of the OFDM demodulator under TPDF
vs. CSDF).  Exact minimal buffer sizing is NP-hard, so like the
reference tools we report the peak fill levels of concrete executions:

* :func:`schedule_buffer_sizes` — peaks of a given schedule;
* :func:`minimal_buffer_schedule` — a greedy demand-driven heuristic
  that picks, among fireable actors, the firing that minimizes the
  resulting total fill (deterministic tie-breaking), which in practice
  finds the single-processor minimum for stream pipelines;
* :func:`bounded_feasible` — validity check of a candidate capacity
  vector by simulating with blocking writes (used by tests to confirm
  reported sizes are actually sufficient, and that one token less
  deadlocks when the heuristic is tight).
"""

from __future__ import annotations

from typing import Iterable, Mapping

from ..cache import bindings_key, cached, register_binding_insensitive
from ..errors import DeadlockError
from .analysis import concrete_repetition_vector
from .graph import CSDFGraph
from .schedule import SequentialSchedule
from .simulation import TokenState

# The greedy buffer heuristic only counts tokens — execution times
# never enter it — so its result survives binding-only version bumps.
register_binding_insensitive("min_buffer_schedule")


def schedule_buffer_sizes(
    graph: CSDFGraph,
    schedule: Iterable[str],
    bindings: Mapping | None = None,
) -> dict[str, int]:
    """Peak fill level per channel while replaying ``schedule``."""
    state = TokenState(graph, bindings)
    state.run(list(schedule))
    return dict(state.peak)


def minimal_buffer_schedule(
    graph: CSDFGraph,
    bindings: Mapping | None = None,
    repetitions: Mapping[str, int] | None = None,
) -> tuple[SequentialSchedule, dict[str, int]]:
    """Greedy single-processor schedule minimizing buffer peaks.

    At each step, among actors with remaining firings whose firing rule
    holds, fire the one whose firing yields the smallest total fill
    level; ties break towards the actor closest to the sink (largest
    topological depth), then by name.  Returns the schedule and its
    per-channel peaks.

    The default-repetitions result is memoized per graph version (the
    greedy probe simulation dominates warm re-analysis cost) and, being
    untimed, carried across binding-only bumps; the peaks dict is
    copied per call so callers may mutate it freely.
    """
    if repetitions is None:
        schedule, peaks = cached(
            graph, ("min_buffer_schedule", bindings_key(bindings)),
            lambda: _minimal_buffer_schedule(graph, bindings, None),
        )
        return schedule, dict(peaks)
    return _minimal_buffer_schedule(graph, bindings, repetitions)


def _minimal_buffer_schedule(
    graph: CSDFGraph,
    bindings: Mapping | None,
    repetitions: Mapping[str, int] | None,
) -> tuple[SequentialSchedule, dict[str, int]]:
    targets = dict(repetitions) if repetitions is not None else concrete_repetition_vector(graph, bindings)
    state = TokenState(graph, bindings)
    remaining = dict(targets)
    firings: list[str] = []
    depth = _sink_distance(graph)

    while any(count > 0 for count in remaining.values()):
        candidates = [a for a, left in remaining.items() if left > 0 and state.can_fire(a)]
        if not candidates:
            blocked = [a for a, left in remaining.items() if left > 0]
            raise DeadlockError(
                f"buffer-minimizing schedule stalled; blocked actors: {blocked}",
                blocked=blocked,
                partial_schedule=firings,
            )
        best = None
        best_key = None
        for actor in candidates:
            probe = state.copy()
            probe.fire(actor)
            key = (probe.total_tokens(), depth.get(actor, 0), actor)
            if best_key is None or key < best_key:
                best, best_key = actor, key
        assert best is not None
        state.fire(best)
        remaining[best] -= 1
        firings.append(best)
    return SequentialSchedule(firings), dict(state.peak)


def _sink_distance(graph: CSDFGraph) -> dict[str, int]:
    """Longest forward distance to a sink, ignoring cycles.

    Used as a tie-breaker so the greedy scheduler drains tokens towards
    consumers instead of piling them up at producers.  Larger is closer
    to the source, so the *negative* distance sorts sinks first.
    """
    nxg = graph.to_networkx()
    import networkx as nx

    condensed = nx.condensation(nxg)
    order = list(nx.topological_sort(condensed))
    scc_depth: dict[int, int] = {}
    for scc in reversed(order):
        successors = list(condensed.successors(scc))
        scc_depth[scc] = 0 if not successors else 1 + max(scc_depth[s] for s in successors)
    return {
        actor: scc_depth[scc]
        for scc in condensed.nodes
        for actor in condensed.nodes[scc]["members"]
    }


def total_buffer_size(peaks: Mapping[str, int]) -> int:
    """Total memory: sum of per-channel capacities (the y-axis of Fig. 8)."""
    return sum(peaks.values())


def bounded_feasible(
    graph: CSDFGraph,
    capacities: Mapping[str, int],
    bindings: Mapping | None = None,
    repetitions: Mapping[str, int] | None = None,
) -> bool:
    """Can one iteration complete with blocking writes under
    ``capacities``?

    An actor may fire only when its inputs hold enough tokens *and*
    every output channel has room for the produced tokens.  Uses
    exhaustive maximal execution, which is conclusive for this
    monotonic firing rule extended with back-pressure only as a
    semi-decision: a completed iteration proves feasibility; a stall
    under every greedy choice is reported as infeasible (sufficient for
    the library's validation purposes).
    """
    targets = dict(repetitions) if repetitions is not None else concrete_repetition_vector(graph, bindings)
    state = TokenState(graph, bindings)
    remaining = dict(targets)

    def writable(actor: str) -> bool:
        for channel in graph.out_channels(actor):
            produced = state.supply(actor, channel.name)
            cap = capacities.get(channel.name)
            if cap is None:
                continue
            headroom = cap - state.tokens[channel.name]
            if channel.src == channel.dst:
                headroom += state.demand(actor, channel.name)
            if produced > headroom:
                return False
        return True

    while any(count > 0 for count in remaining.values()):
        progressed = False
        for actor, left in remaining.items():
            if left <= 0 or not state.can_fire(actor) or not writable(actor):
                continue
            state.fire(actor)
            remaining[actor] -= 1
            progressed = True
        if not progressed:
            return False
    return True
