"""Array-state (struct-of-arrays) backend for the timed CSDF executor.

The wakeup core of :mod:`repro.csdf.eventloop` already visits only the
actors adjacent to changed channels, but every visit still walks the
actor's firing tables in Python — and every execution rebuilds those
tables from the graph, which a ``min_buffers_for_full_throughput``
search pays hundreds of times over (one ``period_with`` probe per
binary-search step).  This module removes both costs:

:class:`ArrayState`
    A struct-of-arrays **template**: channel tokens / capacities /
    rate phases and actor adjacency flattened into numpy arrays (one
    slot per channel, CSR-style per-actor edge tables), built **once
    per (graph version, bindings)** and memoized through
    :mod:`repro.cache`.  A probe run clones a few flat arrays instead
    of re-deriving rates — the setup cost that used to be ~20% of a
    run drops to array copies.

:func:`ArrayState.ready_mask`
    The vectorized ready check: the firing rule for **all** actors is
    evaluated in one numpy gather/compare over the channel arrays
    (tokens vs. the consumption phase of each consumer's next firing,
    occupancy vs. capacity for the producers) instead of per-actor
    Python loops.  The executor uses it to seed the initial worklist
    in one shot; the differential tests use it to cross-check the
    incremental readiness counters below after arbitrary prefixes.

:func:`self_timed_execution_arrays`
    The event loop itself.  Between events readiness is maintained
    *incrementally*: every channel keeps the satisfaction bit of its
    two firing-rule constraints (tokens ≥ next consumption;
    occupancy + next production ≤ capacity), and each actor counts its
    unsatisfied constraints.  A token mutation updates exactly the
    bits of the touched channel, and an actor enters the worklist
    precisely when its count hits zero — the per-candidate ready check
    collapses to one integer comparison.  Events are scheduled through
    the calendar queue of :mod:`repro.csdf.calqueue` (same
    ``(time, seq)`` FIFO contract as ``EventQueue``, heap fallback at
    small queue sizes).

Bit-for-bit contract
--------------------
The backend reproduces the wakeup and reference loops exactly —
identical ``TimedResult`` (every float), identical deadlock blocked
sets — because it starts the same firings in the same order: a
candidate is seeded at the very moment the wakeup invariant would
re-examine it and find it ready, with the same scan-order pass
discipline (ahead-of-cursor seeds join the current pass, behind-cursor
seeds the next one, core-budget exhaustion suspends the drain with all
unexamined candidates kept).  Candidates the wakeup loop would examine
and *skip* (unready, busy, or done) are simply never queued, which is
why the recorded ``ready_visits`` drop to roughly the number of
firings.  ``tests/sim/test_eventloop_differential.py`` pins all three
backends against each other on the 200-graph corpus × core budgets ×
capacity constraints.
"""

from __future__ import annotations

from bisect import insort
from heapq import heappop, heappush
from typing import Mapping

import numpy as np

from ..cache import bindings_key, cached, content_store, delta_since, version_of
from ..errors import DeadlockError
from .analysis import concrete_repetition_vector
from .calqueue import CalendarQueue
from .graph import CSDFGraph

__all__ = ["ArrayState", "array_state", "sim_array_state",
           "self_timed_execution_arrays"]

#: Capacity sentinel in the caps array: "unbounded".
_UNCAPPED = -1

#: Actor count from which an unbounded-cores run schedules its events
#: through :class:`~repro.csdf.calqueue.CalendarQueue` — below this
#: the in-flight population (at most one firing per actor, capped by
#: the core budget) cannot cross the queue's own calendar threshold,
#: so the run uses the C heap directly with the same FIFO contract.
_CALENDAR_ACTORS = 128


class ArrayState:
    """Struct-of-arrays template for one (graph, bindings) pair.

    Everything here is immutable and shared across runs (the template
    is memoized per graph version); per-run state is cloned from the
    flat arrays by :func:`self_timed_execution_arrays`.

    Channel-indexed arrays (one slot per channel, graph order):

    ``tokens0``      initial token counts
    ``chan_src`` / ``chan_dst``   producer / consumer scan positions
    ``cons0`` / ``prod0``         rate of the slot's first firing
    ``cons_base/len`` + ``cons_flat`` (and the ``prod`` twins)
                     CSR phase tables: the rate of firing ``k`` on
                     slot ``s`` is ``flat[base[s] + k % len[s]]``

    Actor-indexed structures (repetition-vector scan order):

    ``qv``           repetition counts
    ``in_edges`` / ``out_edges``
                     per-actor ``(slot, phases|None, const_rate)``
                     triples — the scalar mirrors of the CSR tables
                     the hot loop walks (``phases`` is ``None`` for
                     single-phase rates, skipping the modulo)
    ``exec_const`` / ``exec_phases``
                     execution times (constant fast path)
    """

    __slots__ = ("order", "n", "nchan", "channel_names", "qv", "qv_np",
                 "tokens0", "chan_src", "chan_dst", "cons0", "prod0",
                 "cons_base", "cons_len", "cons_flat",
                 "prod_base", "prod_len", "prod_flat",
                 "in_edges", "out_edges", "exec_const", "exec_phases",
                 "self_loop", "batch")

    def __init__(self, graph: CSDFGraph, bindings: Mapping | None,
                 order: list[str] | None = None):
        if order is None:
            q = concrete_repetition_vector(graph, bindings)
            self.order = list(q)
            self.qv = [q[name] for name in self.order]
            self.qv_np = np.asarray(self.qv, dtype=np.int64)
        else:
            # Explicit scan order (the TPDF simulator's control-first
            # order): no repetition-vector iteration targets — the
            # simulator bounds runs with limits/horizons, and the graph
            # need not even be consistent.  Only the channel tables and
            # exec tables below are meaningful for such templates.
            self.order = list(order)
            self.qv = None
            self.qv_np = None
        apos = {name: i for i, name in enumerate(self.order)}
        self.n = len(self.order)

        channels = list(graph.channels.values())
        self.nchan = len(channels)
        self.channel_names = [c.name for c in channels]
        self.tokens0 = np.asarray([c.initial_tokens for c in channels],
                                  dtype=np.int64)
        self.chan_src = np.asarray([apos[c.src] for c in channels],
                                   dtype=np.int64)
        self.chan_dst = np.asarray([apos[c.dst] for c in channels],
                                   dtype=np.int64)
        self.self_loop = self.chan_src == self.chan_dst

        cons = [c.consumption.as_ints(bindings) for c in channels]
        prod = [c.production.as_ints(bindings) for c in channels]
        self.cons_base, self.cons_len, self.cons_flat = _csr_phases(cons)
        self.prod_base, self.prod_len, self.prod_flat = _csr_phases(prod)
        self.cons0 = np.asarray([p[0] for p in cons] or [], dtype=np.int64)
        self.prod0 = np.asarray([p[0] for p in prod] or [], dtype=np.int64)

        in_edges: list[list] = [[] for _ in range(self.n)]
        out_edges: list[list] = [[] for _ in range(self.n)]
        for slot, channel in enumerate(channels):
            in_edges[apos[channel.dst]].append(_edge(slot, cons[slot]))
            out_edges[apos[channel.src]].append(_edge(slot, prod[slot]))
        self.in_edges = [tuple(e) for e in in_edges]
        self.out_edges = [tuple(e) for e in out_edges]

        times = [graph.actor(name).exec_times for name in self.order]
        self.exec_phases = [tuple(t) for t in times]
        self.exec_const = [t[0] if len(t) == 1 else None
                           for t in self.exec_phases]
        # Lazily built CSR companion for the lock-step batched kernel
        # (see repro.csdf.batchexec.batch_tables) — cached on the
        # memoized template so K-run batches build it once.
        self.batch = None

    # -- delta patching ---------------------------------------------------
    def apply_binding_delta(self, graph: CSDFGraph, actors=None) -> "ArrayState":
        """A template for the graph's *current* execution times, built
        by patching this one in place of a full rebuild.

        Only valid across binding-only deltas (execution-time edits
        that keep each actor's phase count — the contract enforced by
        ``Actor.set_exec_time``): rates, tokens, topology and hence the
        repetition vector are unchanged, so every array of this
        template is still exact and is *shared* with the clone; only
        the per-actor execution tables of the ``actors`` in the delta
        scope (``None`` = all) are re-read from the graph.  The result
        is indistinguishable from a cold ``ArrayState(graph, bindings)``
        build.
        """
        clone = object.__new__(ArrayState)
        for name in ArrayState.__slots__:
            setattr(clone, name, getattr(self, name))
        exec_phases = list(self.exec_phases)
        exec_const = list(self.exec_const)
        if actors is None:
            positions = range(self.n)
        else:
            apos = {name: i for i, name in enumerate(self.order)}
            positions = [apos[name] for name in actors if name in apos]
        for pos in positions:
            times = tuple(graph.actor(self.order[pos]).exec_times)
            exec_phases[pos] = times
            exec_const[pos] = times[0] if len(times) == 1 else None
        clone.exec_phases = exec_phases
        clone.exec_const = exec_const
        clone.batch = None  # execution times changed: CSR tables stale
        return clone

    # -- vectorized firing rule -----------------------------------------
    def _phase_gather(self, base, length, flat, firing_of_slot):
        if not len(base):
            return np.zeros(0, dtype=np.int64)
        return flat[base + firing_of_slot % length]

    def ready_mask(
        self,
        tokens: np.ndarray,
        started: np.ndarray,
        reserved: np.ndarray | None = None,
        caps: np.ndarray | None = None,
    ) -> np.ndarray:
        """Data-readiness of **every** actor in one gather/compare.

        ``tokens``/``reserved`` are channel-indexed, ``started`` is
        actor-indexed (the firing each actor would start next).  The
        result is exactly ``can_start`` of the scalar loops evaluated
        for all positions at once: tokens cover each input slot's next
        consumption, and — with ``caps`` (``-1`` = unbounded) —
        occupancy plus the next production fits every capped output
        slot, self-loop consumption credited first.
        """
        ready = np.ones(self.n, dtype=bool)
        if not self.nchan:
            return ready
        need = self._phase_gather(self.cons_base, self.cons_len,
                                  self.cons_flat, started[self.chan_dst])
        ready[self.chan_dst[tokens < need]] = False
        if caps is not None:
            capped = caps != _UNCAPPED
            if capped.any():
                produce = self._phase_gather(
                    self.prod_base, self.prod_len, self.prod_flat,
                    started[self.chan_src])
                occupancy = tokens.astype(np.int64, copy=True)
                if reserved is not None:
                    occupancy += reserved
                occupancy[self.self_loop] -= need[self.self_loop]
                blocked = capped & (occupancy + produce > caps)
                ready[self.chan_src[blocked]] = False
        return ready


def _csr_phases(phase_lists):
    """Flatten per-channel phase tuples into (base, len, flat) arrays."""
    base, length, flat = [], [], []
    for phases in phase_lists:
        base.append(len(flat))
        length.append(len(phases))
        flat.extend(phases)
    return (np.asarray(base, dtype=np.int64),
            np.asarray(length, dtype=np.int64),
            np.asarray(flat, dtype=np.int64))


def _edge(slot, phases):
    """Scalar edge mirror: constant rates drop the phase tuple."""
    if len(phases) == 1:
        return (slot, None, phases[0])
    return (slot, tuple(phases), phases[0])


def _freeze_template(state: ArrayState) -> ArrayState:
    """Make the template's numpy arrays read-only.

    The template is shared by every run at the current graph version
    (runs clone from it), so an accidental in-place write — e.g.
    ``state.tokens0[0] = 5`` from exploratory code — would silently
    corrupt all subsequent runs.  numpy raises ``ValueError`` on writes
    to non-writeable arrays, extending the :func:`repro.cache.freeze`
    discipline to the memoized SoA product.
    """
    for name in ArrayState.__slots__:
        value = getattr(state, name)
        if isinstance(value, np.ndarray):
            value.flags.writeable = False
    return state


def array_state(graph: CSDFGraph, bindings: Mapping | None) -> ArrayState:
    """The memoized :class:`ArrayState` template of ``graph`` at
    ``bindings`` (cached per graph version, like every other analysis
    product).

    Rebuilds are delta-aware: the previous version's template is kept
    in a cross-version slot, and when every bump since it was built was
    binding-only (execution-time edits), the new template is produced
    by :meth:`ArrayState.apply_binding_delta` — array sharing plus a
    per-touched-actor patch instead of a full re-derivation.
    """
    key = ("statearrays", bindings_key(bindings))
    return cached(graph, key, lambda: _build_template(graph, bindings, key[1]))


def _build_template(graph: CSDFGraph, bindings: Mapping | None, bk) -> ArrayState:
    store = content_store(graph, "statearrays_slot", limit=64)
    slot = store.get(bk)
    state = None
    if slot is not None:
        prev_version, prev_state = slot
        delta = delta_since(graph, prev_version)
        if not delta.conservative:
            touched = None if delta.touched is None else tuple(delta.touched)
            state = prev_state.apply_binding_delta(graph, touched)
    if state is None:
        state = _freeze_template(ArrayState(graph, bindings))
    store.put(bk, (version_of(graph), state))
    return state


def sim_array_state(graph: CSDFGraph, bindings: Mapping | None,
                    order: list[str]) -> ArrayState:
    """The memoized :class:`ArrayState` template for the TPDF
    simulator's schedule plane.

    Same SoA product as :func:`array_state` but built over the
    simulator's own scan order (control actors first by default) and
    without repetition-vector targets — the simulator runs to
    limits/horizons, not iteration counts, and accepts graphs the
    balance equations reject.  Cached per (graph version, bindings,
    order) so repeated ``Simulator`` constructions over the same graph
    reuse the flattened rate/exec tables.
    """
    key = ("statearrays_sim", bindings_key(bindings), tuple(order))
    return cached(
        graph, key,
        lambda: _freeze_template(ArrayState(graph, bindings, order=list(order))),
    )


def self_timed_execution_arrays(
    graph: CSDFGraph,
    bindings: Mapping | None = None,
    iterations: int = 1,
    cores: int | None = None,
    capacities: Mapping[str, int] | None = None,
    stats: dict | None = None,
):
    """Array-state self-timed execution (see the module docstring).

    Drop-in for :func:`repro.csdf.throughput.self_timed_execution`
    with identical results; normally reached through its
    ``backend="arrays"`` selector.
    """
    from .throughput import TimedResult

    if iterations < 1:
        raise ValueError("need at least one iteration")
    state = array_state(graph, bindings)
    n = state.n
    nchan = state.nchan
    order = state.order
    qv = state.qv
    in_edges = state.in_edges
    out_edges = state.out_edges
    exec_const = state.exec_const
    exec_phases = state.exec_phases
    chan_src = state.chan_src.tolist()
    chan_dst = state.chan_dst.tolist()
    self_loop = state.self_loop.tolist()
    targets = [count * iterations for count in qv]

    # -- per-run state cloned from the template arrays -------------------
    tokens = state.tokens0.tolist()
    peaks = state.tokens0.tolist()
    need_in = state.cons0.tolist()       # consumption of dst's next firing
    started = [0] * n
    completed = [0] * n
    busy = bytearray(n)

    # Channel constraint bits, initialized by one vectorized compare.
    in_sat_np = state.tokens0 >= state.cons0
    in_sat = bytearray(in_sat_np.tobytes())
    missing_np = np.zeros(n, dtype=np.int64)
    if nchan:
        np.add.at(missing_np, state.chan_dst[~in_sat_np], 1)

    has_caps = False
    caps = [None] * nchan
    reserved = [0] * nchan
    cap_need = [0] * nchan               # production of src's next firing
    cap_sat = bytearray(b"\x01" * nchan)
    capped_out: list[tuple] = [()] * n
    if capacities:
        from .throughput import _initial_fit_error, validate_capacities

        validate_capacities(graph, capacities)
        caps_np = np.full(nchan, _UNCAPPED, dtype=np.int64)
        caps_map = dict(capacities)
        for slot, name in enumerate(state.channel_names):
            value = caps_map.get(name)
            if value is not None:
                caps_np[slot] = value
        capped_mask = caps_np != _UNCAPPED
        too_small = capped_mask & (caps_np < state.tokens0)
        if too_small.any():
            raise _initial_fit_error(
                [state.channel_names[s] for s in np.flatnonzero(too_small)],
                list(order))
        has_caps = bool(capped_mask.any())
        if has_caps:
            caps = [None if c == _UNCAPPED else c for c in caps_np.tolist()]
            cap_need = state.prod0.tolist()
            occupancy = state.tokens0.astype(np.int64, copy=True)
            occupancy[state.self_loop] -= state.cons0[state.self_loop]
            cap_sat_np = ~capped_mask | (occupancy + state.prod0 <= caps_np)
            cap_sat = bytearray(cap_sat_np.tobytes())
            np.add.at(missing_np, state.chan_src[~cap_sat_np], 1)
            capped_out = [
                tuple(e for e in out_edges[pos] if caps[e[0]] is not None)
                for pos in range(n)
            ]
    missing = missing_np.tolist()

    # Event scheduling: the CalendarQueue's own policy runs buckets
    # only past its calendar threshold, so its heap mode would add one
    # method call per event for nothing on small runs.  Hoist that
    # decision to run level: only an execution whose in-flight
    # population can cross the threshold (unbounded cores, enough
    # actors) instantiates the calendar queue; every other run
    # schedules straight on the C heap with the same ``(time, seq)``
    # FIFO contract — bit-identical pop order either way.
    use_cal = cores is None and n >= _CALENDAR_ACTORS
    if use_cal:
        events = CalendarQueue()
        push_event = events.push
        pop_event = events.pop
    else:
        heap: list[tuple[float, int, int]] = []
        seq = 0
    now = 0.0
    running = 0
    visits = 0
    firings = 0
    iteration_ends: list[float] = []
    iteration_target = 1
    short_of_target = sum(1 for i in range(n) if completed[i] < qv[i])

    # Worklist: `queue` holds the candidates of the next pass, `pending`
    # marks queued positions (either list).  Initial seeding is the one
    # place a whole pass is evaluated at once — the vectorized mask.
    pending = bytearray(n)
    ready0 = state.ready_mask(
        state.tokens0, np.zeros(n, dtype=np.int64),
        caps=None if not has_caps else caps_np)
    queue = [int(pos) for pos in np.flatnonzero(
        ready0 & (np.asarray(targets, dtype=np.int64) > 0))]
    for pos in queue:
        pending[pos] = 1

    while True:
        # ---- drain: start every ready candidate, in scan order ----
        while queue:
            if len(queue) > 1:
                queue.sort()
            cur = queue
            queue = []
            progress = False
            suspended = False
            i = 0
            ncur = len(cur)
            while i < ncur:
                pos = cur[i]
                i += 1
                visits += 1
                if started[pos] >= targets[pos] or busy[pos]:
                    pending[pos] = 0
                    continue
                if cores is not None and running >= cores:
                    # Core budget exhausted: suspend the drain, keeping
                    # this candidate and every unexamined one queued.
                    queue = cur[i - 1:] + queue
                    suspended = True
                    break
                pending[pos] = 0
                if missing[pos]:
                    continue  # went stale since it was seeded
                # ---- start firing `nfir` of `pos` ----
                nfir = started[pos]
                started[pos] = nfir + 1
                busy[pos] = 1
                running += 1
                left = 0
                for s, phases, cval in in_edges[pos]:
                    if phases is None:
                        take = cval
                        need = cval
                    else:
                        ln = len(phases)
                        take = phases[nfir % ln]
                        need = phases[(nfir + 1) % ln]
                        need_in[s] = need
                    level = tokens[s] - take
                    tokens[s] = level
                    # Each input slot is touched exactly once here, so
                    # this actor's next-firing satisfaction bit can be
                    # settled in the same pass over its inputs.
                    sat = level >= need
                    in_sat[s] = sat
                    if not sat:
                        left += 1
                    if has_caps and caps[s] is not None and not cap_sat[s]:
                        # Headroom freed on a capped input: its producer
                        # may have become startable (mid-pass wake).
                        producer = chan_src[s]
                        if producer != pos and (
                            level + reserved[s] + cap_need[s] <= caps[s]
                        ):
                            cap_sat[s] = 1
                            remaining = missing[producer] - 1
                            missing[producer] = remaining
                            if (remaining == 0 and not busy[producer]
                                    and started[producer] < targets[producer]
                                    and not pending[producer]):
                                pending[producer] = 1
                                if producer > pos:
                                    insort(cur, producer, i)
                                    ncur += 1
                                else:
                                    queue.append(producer)
                if capped_out[pos]:
                    # Reserve this firing's production, then re-judge
                    # the capacity bits against the *next* firing
                    # (phases advanced, tokens/reserved moved).
                    for s, phases, pval in capped_out[pos]:
                        if phases is None:
                            give = pval
                        else:
                            ln = len(phases)
                            give = phases[nfir % ln]
                            cap_need[s] = phases[(nfir + 1) % ln]
                        reserved[s] += give
                    for s, _phases, _pval in capped_out[pos]:
                        occ = tokens[s] + reserved[s] + cap_need[s]
                        if self_loop[s]:
                            occ -= need_in[s]
                        sat = occ <= caps[s]
                        cap_sat[s] = sat
                        if not sat:
                            left += 1
                missing[pos] = left
                duration = exec_const[pos]
                if duration is None:
                    phases = exec_phases[pos]
                    duration = phases[nfir % len(phases)]
                if use_cal:
                    push_event(now + duration, pos)
                else:
                    heappush(heap, (now + duration, seq, pos))
                    seq += 1
                progress = True
            if suspended or not progress:
                break

        # ---- next completion event ----
        try:
            if use_cal:
                now, _, pos = pop_event()
            else:
                now, _, pos = heappop(heap)
        except IndexError:
            break  # quiescent: no live events left
        nfir = completed[pos]
        for s, phases, pval in out_edges[pos]:
            give = pval if phases is None else phases[nfir % len(phases)]
            level = tokens[s] + give
            tokens[s] = level
            if has_caps and caps[s] is not None:
                reserved[s] -= give  # occupancy unchanged: cap bit holds
            if level > peaks[s]:
                peaks[s] = level
            if not in_sat[s] and level >= need_in[s]:
                in_sat[s] = 1
                consumer = chan_dst[s]
                left = missing[consumer] - 1
                missing[consumer] = left
                if (left == 0 and not busy[consumer]
                        and started[consumer] < targets[consumer]
                        and not pending[consumer]):
                    pending[consumer] = 1
                    queue.append(consumer)
        done = nfir + 1
        completed[pos] = done
        busy[pos] = 0
        running -= 1
        firings += 1
        if (missing[pos] == 0 and started[pos] < targets[pos]
                and not pending[pos]):
            pending[pos] = 1
            queue.append(pos)
        if done == qv[pos] * iteration_target:
            short_of_target -= 1
            while short_of_target == 0:
                iteration_ends.append(now)
                iteration_target += 1
                short_of_target = sum(
                    1 for i in range(n)
                    if completed[i] < qv[i] * iteration_target
                )
                if iteration_target > iterations:
                    break

    if stats is not None:
        stats["ready_visits"] = visits
        stats["events"] = firings
    if any(completed[i] < targets[i] for i in range(n)):
        blocked = [order[i] for i in range(n) if completed[i] < targets[i]]
        raise DeadlockError(
            f"self-timed execution stalled after {firings} firings",
            blocked=blocked,
        )
    return TimedResult(
        makespan=now,
        iterations=iterations,
        firings=firings,
        iteration_ends=iteration_ends,
        peaks=dict(zip(state.channel_names, peaks)),
    )
