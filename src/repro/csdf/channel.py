"""CSDF communication channels (FIFO queues of tokens).

A channel carries tokens from its producer to its consumer; its state
is characterized by the number of tokens it holds, starting from
``initial_tokens`` (the ``phi*`` of the paper's Definition 2 restricted
to CSDF).  The production rate sequence is indexed by producer firings,
the consumption sequence by consumer firings.
"""

from __future__ import annotations

from .rates import RateLike, RateSequence


class Channel:
    """A directed FIFO channel between two actors."""

    __slots__ = ("name", "src", "dst", "production", "consumption", "initial_tokens")

    def __init__(
        self,
        name: str,
        src: str,
        dst: str,
        production: RateLike,
        consumption: RateLike,
        initial_tokens: int = 0,
    ):
        if initial_tokens < 0:
            raise ValueError(f"channel {name!r}: negative initial tokens")
        self.name = name
        self.src = src
        self.dst = dst
        self.production = RateSequence.of(production)
        self.consumption = RateSequence.of(consumption)
        self.initial_tokens = int(initial_tokens)

    def is_selfloop(self) -> bool:
        return self.src == self.dst

    def variables(self) -> set[str]:
        return self.production.variables() | self.consumption.variables()

    def __repr__(self) -> str:
        return (
            f"Channel({self.name!r}, {self.src!r} -> {self.dst!r}, "
            f"prod={self.production}, cons={self.consumption}, "
            f"init={self.initial_tokens})"
        )
