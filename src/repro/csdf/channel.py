"""CSDF communication channels (FIFO queues of tokens).

A channel carries tokens from its producer to its consumer; its state
is characterized by the number of tokens it holds, starting from
``initial_tokens`` (the ``phi*`` of the paper's Definition 2 restricted
to CSDF).  The production rate sequence is indexed by producer firings,
the consumption sequence by consumer firings.
"""

from __future__ import annotations

from .rates import RateLike, RateSequence


class Channel:
    """A directed FIFO channel between two actors.

    The rate sequences and the initial-token count feed every cached
    analysis, so assigning them after the channel joined a graph bumps
    that graph's analysis version (and raises on frozen graphs — the
    shared memoized products of ``as_csdf()``/``expand_to_hsdf()``).
    """

    __slots__ = ("name", "src", "dst", "_production", "_consumption",
                 "_initial_tokens", "_owner")

    def __init__(
        self,
        name: str,
        src: str,
        dst: str,
        production: RateLike,
        consumption: RateLike,
        initial_tokens: int = 0,
    ):
        self.name = name
        self.src = src
        self.dst = dst
        #: Owning graph; set by ``CSDFGraph.add_channel`` so in-place
        #: edits propagate a cache-invalidation bump.
        self._owner = None
        self.production = production
        self.consumption = consumption
        self.initial_tokens = initial_tokens

    def _touch(self) -> None:
        """Bump the owning graph's version *before* the field changes:
        on frozen graphs this raises, leaving the channel intact.

        Rate and token edits move the balance equations and the HSDF
        expansion shape, so they are structural — but scoped to this
        channel, which lets delta-aware consumers localize the damage.
        """
        if self._owner is not None:
            from ..cache import bump_version

            bump_version(self._owner, kind="structural", scope=(self.name,))

    @property
    def production(self) -> RateSequence:
        return self._production

    @production.setter
    def production(self, value: RateLike) -> None:
        rates = RateSequence.of(value)
        self._touch()
        self._production = rates

    @property
    def consumption(self) -> RateSequence:
        return self._consumption

    @consumption.setter
    def consumption(self, value: RateLike) -> None:
        rates = RateSequence.of(value)
        self._touch()
        self._consumption = rates

    @property
    def initial_tokens(self) -> int:
        return self._initial_tokens

    @initial_tokens.setter
    def initial_tokens(self, value: int) -> None:
        if value < 0:
            raise ValueError(f"channel {self.name!r}: negative initial tokens")
        self._touch()
        self._initial_tokens = int(value)

    def is_selfloop(self) -> bool:
        return self.src == self.dst

    def variables(self) -> set[str]:
        return self.production.variables() | self.consumption.variables()

    def __repr__(self) -> str:
        return (
            f"Channel({self.name!r}, {self.src!r} -> {self.dst!r}, "
            f"prod={self.production}, cons={self.consumption}, "
            f"init={self.initial_tokens})"
        )
