"""Parametric (symbolic) maximum cycle ratio.

:func:`repro.csdf.mcr.max_cycle_ratio` answers "what is the steady-state
period at *this* parameter valuation"; this module answers the question
for a whole **domain** of valuations at once.  The result is a
:class:`PiecewiseMCR`: a finite set of symbolic candidate ratios
(:class:`~repro.symbolic.rational.Rat` in the graph parameters) together
with an exact partition of the domain into box regions on which one
candidate attains the maximum.  One build replaces an N-binding Howard
sweep; evaluating a binding afterwards is a handful of exact polynomial
evaluations.

How it works
------------
Contract every actor's firings in the HSDF expansion to a single node
and each HSDF cycle projects to a closed walk of the CSDF graph.  Every
edge of a closed walk lies inside one strongly connected component, so
each HSDF cycle is one of exactly two kinds:

* the **serialization ring** of a single actor ``a`` — its ratio is the
  actor's per-iteration work over the ring's one token,

  .. math:: R_a(p) = q_a(p) \\cdot \\bar e_a,

  with ``q_a`` the (symbolic) repetition count and ``\\bar e_a`` the
  mean phase execution time: an exact polynomial in the parameters;

* a cycle inside the sub-expansion of a **nontrivial SCC** (actors on
  directed cycles, including self-loop channels).  When that cyclic
  core has *binding-independent structure* — constant rates on its
  channels and constant repetition counts for its actors — the
  sub-expansion is the same finite weighted graph at every valuation,
  and one Howard run with exact critical-cycle extraction
  (:func:`repro.csdf.mcr.howard_critical_cycle`) yields its maximum
  cycle ratio as a single exact rational constant.

The parametric MCR is then the exact upper envelope of finitely many
candidates.  Graphs whose cyclic core itself changes shape with the
parameters fall outside the supported class and raise
:class:`~repro.errors.ParametricMCRError` (the concrete solver keeps
working for them, one binding at a time).  Acyclic graphs — every
pipeline application in the paper — are always supported.

Exactness
---------
All candidate algebra is exact (:class:`~fractions.Fraction`
coefficients).  ``evaluate`` returns the exact rational MCR;
``evaluate_float`` reproduces :func:`max_cycle_ratio` bit-for-bit
whenever the float weight/distance sums inside Howard's iteration are
exact — in particular for integer execution times (the differential
suite ``tests/csdf/test_parametric_mcr.py`` asserts equality at
hundreds of random bindings).

Example
-------
>>> from repro.csdf import CSDFGraph
>>> from repro.csdf.parametric import ParamDomain, parametric_mcr
>>> from repro.symbolic import Param
>>> p = Param("p")
>>> g = CSDFGraph("pipe")
>>> _ = g.add_actor("src", exec_time=3)
>>> _ = g.add_actor("snk", exec_time=2)
>>> _ = g.add_channel("c", "src", "snk", production=p, consumption=1)
>>> pw = parametric_mcr(g, ParamDomain({"p": (1, 8)}))
>>> print(pw.describe())  # exact crossover between the rings at p = 2
parametric MCR of 'pipe' over p=1..8: 2 candidate(s), 2 region(s)
  [0] ring:src = 3
  [1] ring:snk = 2*p
  p=1..1 -> ring:src
  p=2..8 -> ring:snk
>>> pw.evaluate({"p": 5})
Fraction(10, 1)
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Mapping, Union

from ..cache import cached, domain_key
from ..errors import AnalysisError, ParametricMCRError
from ..symbolic import Poly, Rat, normalize_bindings
from .analysis import repetition_vector
from .graph import CSDFGraph
from .mcr import howard_critical_cycle, max_cycle_ratio
from .sdf import channel_firing_flows

#: A box: tuple of (parameter name, inclusive lo, inclusive hi),
#: sorted by name.
Box = tuple[tuple[str, int, int], ...]

DomainLike = Union["ParamDomain", Mapping, Iterable, str, None]


class ParamDomain:
    """An integer box domain: each parameter ranges over ``lo..hi``.

    ``lo`` must be at least 1 (parameters are strictly positive
    integers); ``hi < lo`` declares the domain **empty**.  A domain
    with no parameters is the single empty valuation — the right shape
    for concrete graphs.

    >>> d = ParamDomain({"p": (1, 8), "q": (2, 4)})
    >>> str(d)
    'p=1..8, q=2..4'
    >>> d.size
    24
    >>> d.contains({"p": 3, "q": 2})
    True
    >>> ParamDomain.parse(["p=1..8", "q=3"]).ranges
    {'p': (1, 8), 'q': (3, 3)}
    """

    __slots__ = ("_ranges",)

    def __init__(self, ranges: Mapping | None = None):
        normalized: dict[str, tuple[int, int]] = {}
        for key, bounds in (ranges or {}).items():
            name = getattr(key, "name", None) or str(key)
            if isinstance(bounds, int):
                lo = hi = bounds
            else:
                lo, hi = bounds
            lo, hi = int(lo), int(hi)
            if lo < 1:
                raise ParametricMCRError(
                    f"parameter {name!r}: lower bound must be >= 1, got {lo}"
                )
            normalized[name] = (lo, hi)
        self._ranges = dict(sorted(normalized.items()))

    # -- constructors ---------------------------------------------------
    @staticmethod
    def of(value: DomainLike) -> "ParamDomain":
        """Coerce domains, mappings and ``name=lo..hi`` spec lists."""
        if isinstance(value, ParamDomain):
            return value
        if value is None:
            return ParamDomain()
        if isinstance(value, Mapping):
            return ParamDomain(value)
        return ParamDomain.parse(value)

    @staticmethod
    def parse(specs: Iterable[str] | str) -> "ParamDomain":
        """Parse ``"name=lo..hi"`` (or ``"name=value"``) specs — the
        grammar of the ``analyze --param`` CLI flag."""
        if isinstance(specs, str):
            specs = [specs]
        ranges: dict[str, tuple[int, int]] = {}
        for spec in specs:
            if "=" not in spec:
                raise ParametricMCRError(
                    f"domain spec {spec!r}: expected name=lo..hi or name=value"
                )
            name, _, text = spec.partition("=")
            name = name.strip()
            text = text.strip()
            try:
                if ".." in text:
                    lo_text, _, hi_text = text.partition("..")
                    lo, hi = int(lo_text), int(hi_text)
                else:
                    lo = hi = int(text)
            except ValueError as exc:
                raise ParametricMCRError(
                    f"domain spec {spec!r}: bounds must be integers"
                ) from exc
            ranges[name] = (lo, hi)
        return ParamDomain(ranges)

    # -- views ----------------------------------------------------------
    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._ranges)

    @property
    def ranges(self) -> dict[str, tuple[int, int]]:
        return dict(self._ranges)

    @property
    def is_empty(self) -> bool:
        """True when some range is empty (``hi < lo``)."""
        return any(hi < lo for lo, hi in self._ranges.values())

    @property
    def size(self) -> int:
        """Number of integer valuations in the box (1 for no params)."""
        total = 1
        for lo, hi in self._ranges.values():
            total *= max(0, hi - lo + 1)
        return total

    def contains(self, bindings: Mapping) -> bool:
        """True when ``bindings`` assigns an in-range integer to every
        domain parameter (extra bindings are ignored)."""
        named = normalize_bindings(bindings)
        for name, (lo, hi) in self._ranges.items():
            value = named.get(name)
            if value is None or value.denominator != 1:
                return False
            if not lo <= value <= hi:
                return False
        return True

    def key(self) -> tuple:
        """Hashable identity (the :func:`repro.cache.domain_key` view)."""
        return tuple((name, lo, hi) for name, (lo, hi) in self._ranges.items())

    def box(self) -> Box:
        return self.key()

    def grid(self):
        """Iterate every integer valuation (dicts), in lexicographic
        order of the sorted parameter names."""
        names = self.names
        if self.is_empty:
            return
        def rec(i: int, acc: dict):
            if i == len(names):
                yield dict(acc)
                return
            lo, hi = self._ranges[names[i]]
            for v in range(lo, hi + 1):
                acc[names[i]] = v
                yield from rec(i + 1, acc)
        yield from rec(0, {})

    def corners(self):
        """Iterate the corner valuations of the box (deduplicated)."""
        seen = set()
        for corner in self._corners_raw():
            key = tuple(sorted(corner.items()))
            if key not in seen:
                seen.add(key)
                yield dict(corner)

    def _corners_raw(self):
        names = self.names
        if self.is_empty:
            return
        def rec(i: int, acc: dict):
            if i == len(names):
                yield dict(acc)
                return
            lo, hi = self._ranges[names[i]]
            for v in {lo, hi}:
                acc[names[i]] = v
                yield from rec(i + 1, acc)
        yield from rec(0, {})

    def center(self) -> dict[str, int]:
        """The (rounded-down) midpoint valuation."""
        return {name: (lo + hi) // 2 for name, (lo, hi) in self._ranges.items()}

    # -- identity -------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, ParamDomain):
            return self._ranges == other._ranges
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("ParamDomain", self.key()))

    def __repr__(self) -> str:
        return f"ParamDomain({self._ranges!r})"

    def __str__(self) -> str:
        if not self._ranges:
            return "(no parameters)"
        return ", ".join(f"{n}={lo}..{hi}" for n, (lo, hi) in self._ranges.items())


class MCRCandidate:
    """One symbolic cycle-ratio candidate of the piecewise maximum."""

    __slots__ = ("label", "kind", "ratio")

    def __init__(self, label: str, kind: str, ratio: Rat):
        self.label = label      #: ``ring:<actor>`` or ``cycle:<scc>``
        self.kind = kind        #: ``"ring"`` | ``"cycle"``
        self.ratio = Rat.coerce(ratio)

    def value_at(self, bindings: Mapping) -> Fraction:
        return self.ratio.evaluate(bindings)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, MCRCandidate):
            return self.label == other.label and self.ratio == other.ratio
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("MCRCandidate", self.label, self.ratio))

    def __repr__(self) -> str:
        return f"MCRCandidate({self.label!r}, {self.ratio!r})"

    def __str__(self) -> str:
        return f"{self.label} = {self.ratio}"


class Region:
    """A box of the domain on which one candidate attains the maximum."""

    __slots__ = ("bounds", "candidate")

    def __init__(self, bounds: Box, candidate: int):
        self.bounds = tuple(sorted(tuple(b) for b in bounds))
        self.candidate = candidate  #: index into ``PiecewiseMCR.candidates``

    def contains(self, bindings: Mapping) -> bool:
        named = normalize_bindings(bindings)
        return all(lo <= named.get(name, Fraction(-1)) <= hi
                   for name, lo, hi in self.bounds)

    @property
    def size(self) -> int:
        total = 1
        for _, lo, hi in self.bounds:
            total *= max(0, hi - lo + 1)
        return total

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Region):
            return self.bounds == other.bounds and self.candidate == other.candidate
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("Region", self.bounds, self.candidate))

    def __repr__(self) -> str:
        return f"Region({self.bounds!r}, candidate={self.candidate})"

    def __str__(self) -> str:
        where = ", ".join(f"{name}={lo}..{hi}" for name, lo, hi in self.bounds)
        return f"{where or '(everywhere)'} -> #{self.candidate}"


class PiecewiseMCR:
    """The maximum cycle ratio as a piecewise-symbolic function.

    ``candidates`` are the symbolic cycle-ratio families; ``regions``
    partition the (non-empty part of the) domain into boxes on which a
    single candidate attains the maximum, with exact boundaries derived
    by comparing the candidates as polynomials — no sampling.

    The object is plain data (pickle-safe) and is what
    :class:`repro.analysis.ParametricReport` and the parallel batch
    service ship between processes.
    """

    __slots__ = ("graph_name", "domain", "candidates", "regions", "_q")

    def __init__(self, graph_name: str, domain: ParamDomain,
                 candidates, regions, q_sym: Mapping[str, Poly]):
        self.graph_name = graph_name
        self.domain = domain
        self.candidates: tuple[MCRCandidate, ...] = tuple(candidates)
        self.regions: tuple[Region, ...] = tuple(regions)
        self._q = dict(q_sym)

    # -- evaluation -----------------------------------------------------
    def evaluate(self, bindings: Mapping | None = None) -> Fraction:
        """The exact MCR at ``bindings`` (must lie inside the domain).

        Mirrors the concrete path's validity rules: a valuation at
        which some repetition count is fractional or non-positive
        raises :class:`~repro.errors.AnalysisError`, exactly as
        :func:`~repro.csdf.mcr.max_cycle_ratio` would.
        """
        named = normalize_bindings(bindings or {})
        if not self.domain.contains(named):
            raise ParametricMCRError(
                f"binding {dict(bindings or {})} lies outside the domain "
                f"{self.domain} this piecewise MCR was computed for"
            )
        for name, poly in self._q.items():
            value = poly.evaluate(named)
            if value.denominator != 1:
                raise AnalysisError(
                    f"repetition count of {name!r} is {value} under "
                    f"{dict(bindings or {})}: not an integer"
                )
            if value <= 0:
                raise AnalysisError(
                    f"repetition count of {name!r} is non-positive: {value}"
                )
        if not self.candidates:
            return Fraction(0)
        return max(c.ratio.evaluate(named) for c in self.candidates)

    def evaluate_float(self, bindings: Mapping | None = None) -> float:
        """``float`` view of :meth:`evaluate` — bit-identical to
        :func:`~repro.csdf.mcr.max_cycle_ratio` whenever Howard's float
        weight sums are exact (e.g. integer execution times)."""
        return float(self.evaluate(bindings))

    __call__ = evaluate_float

    def dominant(self, bindings: Mapping | None = None) -> MCRCandidate:
        """The candidate attaining the maximum at ``bindings`` (lowest
        index on ties — the same tie-break the regions use)."""
        named = normalize_bindings(bindings or {})
        self.evaluate(named)  # domain + validity checks
        if not self.candidates:
            raise ParametricMCRError(
                f"piecewise MCR of {self.graph_name!r} has no candidates "
                f"(the graph has no actors), so no cycle dominates"
            )
        best = self.candidates[0]
        best_value = best.ratio.evaluate(named)
        for candidate in self.candidates[1:]:
            value = candidate.ratio.evaluate(named)
            if value > best_value:
                best, best_value = candidate, value
        return best

    def region_for(self, bindings: Mapping) -> Region | None:
        """The region box containing ``bindings`` (None when outside)."""
        for region in self.regions:
            if region.contains(bindings):
                return region
        return None

    # -- reporting ------------------------------------------------------
    def fingerprint(self) -> tuple:
        """Deterministic value identity (for the parallel parity suite)."""
        return (
            self.graph_name,
            self.domain.key(),
            tuple((c.label, c.kind, str(c.ratio)) for c in self.candidates),
            tuple((r.bounds, r.candidate) for r in self.regions),
        )

    def describe(self) -> str:
        """Multi-line human-readable digest."""
        lines = [
            f"parametric MCR of {self.graph_name!r} over {self.domain}: "
            f"{len(self.candidates)} candidate(s), {len(self.regions)} region(s)"
        ]
        for index, candidate in enumerate(self.candidates):
            lines.append(f"  [{index}] {candidate}")
        if self.domain.is_empty:
            lines.append("  (empty domain: no regions)")
        for region in self.regions:
            where = ", ".join(f"{n}={lo}..{hi}" for n, lo, hi in region.bounds)
            label = self.candidates[region.candidate].label
            lines.append(f"  {where or '(everywhere)'} -> {label}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"PiecewiseMCR({self.graph_name!r}, {self.domain}, "
            f"candidates={len(self.candidates)}, regions={len(self.regions)})"
        )


# ----------------------------------------------------------------------
# engine
# ----------------------------------------------------------------------

def parametric_mcr(
    graph,
    domain: DomainLike = None,
    *,
    max_boxes: int = 20_000,
) -> PiecewiseMCR:
    """Compute the MCR of ``graph`` as a piecewise-symbolic function
    over ``domain``.

    ``graph`` may be a :class:`~repro.csdf.graph.CSDFGraph` or anything
    with an ``as_csdf()`` view (TPDF graphs).  ``domain`` must bind
    every parameter occurring in the graph's rates; it accepts a
    :class:`ParamDomain`, a mapping ``{"p": (1, 8)}``, or CLI-style
    specs ``["p=1..8"]``.  Results are memoized per graph version.

    Raises :class:`~repro.errors.ParametricMCRError` when the graph's
    cyclic core is not binding-independent (the supported-class
    condition), and :class:`~repro.errors.AnalysisError` when the core
    deadlocks (a token-free positive-time cycle — exactly when the
    concrete solver would raise, at every valuation).
    """
    csdf: CSDFGraph = graph.as_csdf() if hasattr(graph, "as_csdf") else graph
    dom = ParamDomain.of(domain)
    return cached(
        csdf, ("parametric_mcr", domain_key(dom), max_boxes),
        lambda: _parametric_mcr(csdf, dom, max_boxes),
    )


def _parametric_mcr(csdf: CSDFGraph, domain: ParamDomain, max_boxes: int) -> PiecewiseMCR:
    unbound = sorted(csdf.parameters() - set(domain.names))
    if unbound:
        raise ParametricMCRError(
            f"domain {domain} does not bind parameter(s) "
            f"{', '.join(unbound)} of graph {csdf.name!r}; pass a range "
            f"for every parameter (e.g. --param {unbound[0]}=1..8)"
        )
    if not csdf.actors:
        return PiecewiseMCR(csdf.name, domain, (), (), {})
    q_sym = repetition_vector(csdf)

    candidates: list[MCRCandidate] = [
        _ring_candidate(csdf, name, q_sym) for name in csdf.actors
    ]
    for scc in _cyclic_cores(csdf):
        candidates.append(_core_candidate(csdf, scc, q_sym))

    deduped: list[MCRCandidate] = []
    for candidate in candidates:
        if not any(candidate.ratio == kept.ratio for kept in deduped):
            deduped.append(candidate)

    regions = _partition(domain, deduped, max_boxes)
    return PiecewiseMCR(csdf.name, domain, deduped, regions, q_sym)


def _ring_candidate(csdf: CSDFGraph, name: str, q_sym: Mapping[str, Poly]) -> MCRCandidate:
    """The serialization-ring candidate of one actor.

    The ring carries one token and its weight is the actor's whole
    per-iteration work: ``q_a`` firings cycling through the phase
    execution times, i.e. ``q_a * mean(exec phases)`` — exact because
    the phase count divides ``tau_a`` which divides ``q_a``.
    """
    times = csdf.actor(name).exec_times
    mean = Fraction(0)
    for t in times:
        mean += Fraction(t)
    mean /= len(times)
    return MCRCandidate(f"ring:{name}", "ring", Rat(q_sym[name].scale(mean)))


def _cyclic_cores(csdf: CSDFGraph) -> list[frozenset[str]]:
    """Nontrivial SCCs of the CSDF digraph: actor sets lying on directed
    cycles (including single actors with a self-loop channel)."""
    import networkx as nx

    digraph = nx.DiGraph()
    digraph.add_nodes_from(csdf.actors)
    selfloop = set()
    for channel in csdf.channels.values():
        if channel.src == channel.dst:
            selfloop.add(channel.src)
        else:
            digraph.add_edge(channel.src, channel.dst)
    cores = []
    for scc in nx.strongly_connected_components(digraph):
        if len(scc) > 1 or next(iter(scc)) in selfloop:
            cores.append(frozenset(scc))
    return sorted(cores, key=lambda s: sorted(s))


def _core_candidate(
    csdf: CSDFGraph, scc: frozenset[str], q_sym: Mapping[str, Poly]
) -> MCRCandidate:
    """The maximum cycle ratio of one cyclic core, as an exact constant.

    Validates the supported-class condition (constant repetition counts
    and rates inside the core), builds the core's sub-expansion —
    binding-independent by construction — and extracts the critical
    cycle from one Howard run, re-summing its weights and distances
    exactly.
    """
    label = f"cycle:{'+'.join(sorted(scc))}"
    q_core: dict[str, int] = {}
    for name in sorted(scc):
        poly = q_sym[name]
        if not poly.is_const():
            raise ParametricMCRError(
                f"actor {name!r} lies on a directed cycle but its repetition "
                f"count {poly} is parametric: the cyclic core's shape changes "
                f"with the parameters, which the parametric MCR engine does "
                f"not support (evaluate concretely per binding instead)"
            )
        value = poly.const_value()
        if value.denominator != 1 or value <= 0:
            raise AnalysisError(
                f"repetition count of {name!r} is {value}: not a positive integer"
            )
        q_core[name] = int(value)
    core_channels = [
        c for c in csdf.channels.values() if c.src in scc and c.dst in scc
    ]
    for channel in core_channels:
        if not (channel.production.is_constant() and channel.consumption.is_constant()):
            raise ParametricMCRError(
                f"channel {channel.name!r} lies on a directed cycle and has "
                f"parametric rates: the cyclic core's shape changes with the "
                f"parameters, which the parametric MCR engine does not "
                f"support (evaluate concretely per binding instead)"
            )

    nodes, edges = _core_edges(csdf, sorted(scc), core_channels, q_core)
    solved = howard_critical_cycle(nodes, edges)
    if solved is None:  # pragma: no cover - Howard converges on real cores
        raise ParametricMCRError(
            f"Howard's iteration did not converge on the cyclic core {label}"
        )
    _, cycle_edges = solved
    weight = Fraction(0)
    tokens = Fraction(0)
    for _, _, w, t in cycle_edges:
        weight += Fraction(w)
        tokens += Fraction(t)
    if not cycle_edges or tokens == 0:
        # Zero-weight token-free cycles evaluate to ratio 0 (a positive
        # weight would have tripped the deadlock check inside Howard).
        ratio = Rat(Poly.const(0))
    else:
        ratio = Rat(Poly.const(weight), Poly.const(tokens))
    return MCRCandidate(label, "cycle", ratio)


def _core_edges(csdf: CSDFGraph, actors: list[str], channels, q: Mapping[str, int]):
    """The core's weighted event graph, mirroring the full expansion
    (:func:`repro.csdf.sdf._expand_to_hsdf` + the MCR edge encoding)
    restricted to the core's actors and channels, with the **global**
    repetition counts — the core is analyzed in the whole graph's
    iteration, so its ratio composes with the ring candidates."""
    nodes: list[str] = []
    edges: list[tuple[str, str, float, float]] = []
    for name in actors:
        actor = csdf.actor(name)
        count = q[name]
        firings = [f"{name}#{k}" for k in range(1, count + 1)]
        nodes.extend(firings)
        if count > 1:
            for k in range(1, count + 1):
                nxt = k % count + 1
                edges.append((
                    firings[k - 1], firings[nxt - 1],
                    actor.exec_time(k - 1), 1.0 if nxt == 1 else 0.0,
                ))
        else:
            edges.append((firings[0], firings[0], actor.exec_time(0), 1.0))
    for channel in channels:
        src_actor = csdf.actor(channel.src)
        flows = channel_firing_flows(
            channel, q[channel.src], q[channel.dst]
        )
        for k, m, delta, _count in flows:
            edges.append((
                f"{channel.src}#{k}", f"{channel.dst}#{m}",
                src_actor.exec_time(k - 1), float(delta),
            ))
    return nodes, edges


# ----------------------------------------------------------------------
# exact region partition
# ----------------------------------------------------------------------

def _whole_domain_regions(domain: ParamDomain, candidate: int) -> tuple[Region, ...]:
    if domain.is_empty:
        return ()
    return (Region(domain.box(), candidate),)


def _partition(
    domain: ParamDomain, candidates: list[MCRCandidate], max_boxes: int
) -> tuple[Region, ...]:
    """Partition the domain into boxes on which one candidate dominates.

    Dominance over a box is certified by exact interval bounds on the
    pairwise difference polynomials; uncertified boxes are bisected,
    bottoming out at single valuations decided by exact evaluation.
    Boundaries are exact: no Howard run and no floating point is
    involved.  Ties go to the lowest candidate index everywhere, so the
    partition is deterministic.
    """
    if domain.is_empty:
        return ()
    if len(candidates) <= 1:
        return _whole_domain_regions(domain, 0)
    n = len(candidates)
    diffs: dict[tuple[int, int], Poly | None] = {}
    for i in range(n):
        for j in range(n):
            if i != j:
                diffs[i, j] = _difference_poly(candidates[i].ratio, candidates[j].ratio)

    pending: list[Box] = [domain.box()]
    regions: list[Region] = []
    budget = max_boxes
    while pending:
        budget -= 1
        if budget < 0:
            raise ParametricMCRError(
                f"region partition of {domain} exceeded {max_boxes} boxes; "
                f"coarsen the domain or raise max_boxes"
            )
        box = pending.pop()
        dominant = _dominant_over_box(box, diffs, n)
        if dominant is not None:
            regions.append(Region(box, dominant))
            continue
        if all(lo == hi for _, lo, hi in box):
            point = {name: lo for name, lo, _ in box}
            values = [c.ratio.evaluate(point) for c in candidates]
            regions.append(Region(box, values.index(max(values))))
            continue
        pending.extend(_bisect(box))
    return tuple(_merge_regions(regions))


def _difference_poly(a: Rat, b: Rat) -> Poly | None:
    """``a - b`` as a polynomial when the denominators are constant
    (always true for ring/cycle candidates); None otherwise — the
    partition then decides point-wise."""
    diff = a - b
    if not diff.den.is_const():
        return None
    return diff.num.scale(1 / diff.den.const_value())


def _dominant_over_box(box: Box, diffs, n: int) -> int | None:
    for i in range(n):
        if all(
            diffs[i, j] is not None and _min_over_box(diffs[i, j], box) >= 0
            for j in range(n) if j != i
        ):
            return i
    return None


def _min_over_box(poly: Poly, box: Box) -> Fraction:
    """Exact lower bound of ``poly`` over the box (parameters >= 1):
    each monomial is monotone in every variable, so its extreme sits at
    a corner determined by the coefficient sign."""
    bounds = {name: (lo, hi) for name, lo, hi in box}
    total = Fraction(0)
    for key, coeff in poly.terms.items():
        value = coeff
        for name, exp in key:
            lo, hi = bounds.get(name, (1, 1))
            value *= (lo if coeff > 0 else hi) ** exp
        total += value
    return total


def _bisect(box: Box) -> list[Box]:
    """Split the box in half along its widest axis."""
    widest = max(range(len(box)), key=lambda i: box[i][2] - box[i][1])
    name, lo, hi = box[widest]
    mid = (lo + hi) // 2
    left = list(box)
    right = list(box)
    left[widest] = (name, lo, mid)
    right[widest] = (name, mid + 1, hi)
    return [tuple(left), tuple(right)]


def _merge_regions(regions: list[Region]) -> list[Region]:
    """Greedily merge same-candidate boxes that are identical on all
    axes but one and contiguous there (keeps the partition small and
    readable; correctness does not depend on merging)."""
    regs = list(regions)
    changed = True
    while changed:
        changed = False
        merged: list[Region] = []
        used = [False] * len(regs)
        for i in range(len(regs)):
            if used[i]:
                continue
            current = regs[i]
            for j in range(i + 1, len(regs)):
                if used[j] or regs[j].candidate != current.candidate:
                    continue
                combined = _try_merge(current, regs[j])
                if combined is not None:
                    current = combined
                    used[j] = True
                    changed = True
            merged.append(current)
        regs = merged
    return sorted(regs, key=lambda r: (r.bounds, r.candidate))


def _try_merge(a: Region, b: Region) -> Region | None:
    if len(a.bounds) != len(b.bounds):
        return None
    differing = [
        i for i, (ba, bb) in enumerate(zip(a.bounds, b.bounds)) if ba != bb
    ]
    if len(differing) != 1:
        return None
    i = differing[0]
    name_a, lo_a, hi_a = a.bounds[i]
    name_b, lo_b, hi_b = b.bounds[i]
    if name_a != name_b:
        return None
    if hi_a + 1 == lo_b:
        span = (name_a, lo_a, hi_b)
    elif hi_b + 1 == lo_a:
        span = (name_a, lo_b, hi_a)
    else:
        return None
    bounds = list(a.bounds)
    bounds[i] = span
    return Region(tuple(bounds), a.candidate)


# ----------------------------------------------------------------------
# verification against the concrete solver
# ----------------------------------------------------------------------

def verify_piecewise(
    piecewise: PiecewiseMCR,
    graph,
    bindings_iter: Iterable[Mapping] | None = None,
    max_corner_checks: int = 32,
) -> int:
    """Cross-check ``piecewise`` against concrete Howard MCR.

    Evaluates both sides at each sampled binding (default: the domain's
    corners, capped, plus its center) and raises
    :class:`~repro.errors.AnalysisError` on any disagreement; bindings
    at which the concrete path raises must make the piecewise
    evaluation raise too.  Returns the number of bindings checked.

    This is the "Howard at sampled vertices" safety net: the engine's
    candidate set is complete by construction for the supported class,
    and this check guards the construction itself.
    """
    csdf: CSDFGraph = graph.as_csdf() if hasattr(graph, "as_csdf") else graph
    if bindings_iter is None:
        samples = []
        for index, corner in enumerate(piecewise.domain.corners()):
            if index >= max_corner_checks:
                break
            samples.append(corner)
        if not piecewise.domain.is_empty:
            center = piecewise.domain.center()
            if center not in samples:
                samples.append(center)
        bindings_iter = samples
    checked = 0
    for bindings in bindings_iter:
        checked += 1
        try:
            concrete = max_cycle_ratio(csdf, bindings)
        except AnalysisError:
            try:
                piecewise.evaluate(bindings)
            except AnalysisError:
                continue
            raise AnalysisError(
                f"piecewise MCR evaluates at {bindings} where the concrete "
                f"solver raises"
            )
        symbolic = piecewise.evaluate_float(bindings)
        if symbolic != concrete:
            raise AnalysisError(
                f"piecewise MCR {symbolic!r} != concrete Howard MCR "
                f"{concrete!r} at {bindings} on graph {csdf.name!r}"
            )
    return checked
