"""Shared dependency-driven event-loop core for the self-timed executors.

Both discrete-event loops of the reproduction — the timed CSDF executor
(:mod:`repro.csdf.throughput`) and the value-carrying TPDF simulator
(:mod:`repro.sim.engine`) — used to rescan *every* actor after *every*
completion event to find the next ready firings.  That O(actors) ready
check per event dominates the throughput sweeps (EXT2), the
buffer/throughput probes (EXT3) and every
``min_buffers_for_full_throughput`` search.  This module provides the
two data structures that replace it:

:class:`EventQueue`
    An indexed binary heap of timed events with stable FIFO tie-break
    (events at equal times pop in push order — exactly the
    ``(time, seq)`` tuple ordering the legacy loops got from
    ``heapq``) and O(1) lazy cancellation.  The executors only push
    and pop (no firing is ever revoked); ``cancel`` is the indexing
    capability schedulers that preempt or re-time queued events build
    on — the calendar queue (:mod:`repro.csdf.calqueue`) shares the
    same contract.  Cancellation is *validated*: cancelling an
    already-popped (or already-cancelled, or never-issued) event
    raises ``ValueError`` deterministically instead of silently
    corrupting the length accounting.

:class:`ReadyWorklist`
    A pending-ready worklist over integer actor positions.  The loops
    seed it with exactly the actors whose readiness *may* have changed
    — the **wakeup invariant**: an actor is re-examined iff an
    adjacent channel's token count (or reserved capacity) changed, the
    actor itself completed a firing, or a core it was waiting for was
    released.  Draining the worklist visits only those candidates, yet
    reproduces the legacy full-scan semantics **bit for bit**.

Tie-break contract
------------------
The legacy loops scan a fixed actor order with a forward cursor and
restart the scan whenever some actor started (a start may enable an
actor at an *earlier* position, e.g. a producer unblocked by the
capacity its consumer just freed).  Scheduling decisions under a core
budget, and the sequence numbers that order simultaneous events, both
depend on that exact start order.  :class:`ReadyWorklist` preserves it:

* candidates are examined in increasing position order;
* a candidate seeded at a position *behind* the scan cursor joins the
  **next** pass (the legacy restart), one seeded *ahead* of the cursor
  joins the current pass (the legacy cursor reaches it);
* a drain suspended mid-scan (core budget exhausted) keeps its
  unexamined candidates queued for the next drain.

Because every candidate the legacy scan would have *started* is, by the
wakeup invariant, present in the worklist at the same point of the same
pass, the two disciplines start identical firings in identical order.
The differential suite ``tests/sim/test_eventloop_differential.py``
pins this equivalence against the retained ``*_reference`` loops.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Iterator

__all__ = ["EventQueue", "ReadyWorklist"]


class EventQueue:
    """Indexed min-heap of ``(time, payload)`` events.

    Events with equal times pop in push order (each push gets a
    monotonically increasing sequence number, and entries compare by
    ``(time, seq)`` — payloads are never compared).  ``push`` returns
    the event's sequence number, which :meth:`cancel` lazily deletes in
    O(1) (dead entries are skipped on pop).

    The queue keeps an exact live count, so ``len`` and truthiness
    never drift, and :meth:`cancel` *validates* its argument:
    cancelling a sequence number that is not currently queued —
    already popped, already cancelled, or never issued — raises
    ``ValueError`` instead of leaving a phantom entry that would
    silently under-count the queue.  Validation is paid by the rare
    operation (cancel scans the heap for its target), not the hot
    path: push and pop stay bare ``heappush``/``heappop`` plus an
    integer counter, with the dead set consulted only when non-empty —
    the same discipline as the calendar queue's heap mode.
    """

    __slots__ = ("_heap", "_seq", "_count", "_dead")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Any]] = []
        self._seq = 0
        self._count = 0
        self._dead: set[int] = set()

    def push(self, time: float, payload: Any) -> int:
        seq = self._seq
        self._seq = seq + 1
        self._count += 1
        heappush(self._heap, (time, seq, payload))
        return seq

    def cancel(self, seq: int) -> None:
        """Lazily delete the still-queued event with sequence ``seq``.

        Raises ``ValueError`` if ``seq`` is not live (already popped,
        already cancelled, or never issued) — a deterministic error
        instead of the phantom dead-set entry that used to corrupt
        :meth:`__len__`/:meth:`__bool__`.  Cancellation is the rare
        operation, so it carries the validation cost: one scan of the
        queued entries.
        """
        if seq in self._dead or not any(
            entry[1] == seq for entry in self._heap
        ):
            raise ValueError(
                f"cannot cancel event {seq}: not queued (already "
                f"popped, already cancelled, or never issued)"
            )
        self._dead.add(seq)
        self._count -= 1

    def pop(self) -> tuple[float, int, Any]:
        """Remove and return the earliest live ``(time, seq, payload)``."""
        entry = heappop(self._heap)  # IndexError on empty, per contract
        dead = self._dead
        if dead:
            while entry[1] in dead:
                dead.remove(entry[1])
                entry = heappop(self._heap)
        self._count -= 1
        return entry

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0


class ReadyWorklist:
    """Pending-ready worklist over ``n`` integer positions.

    Positions are seeded when their readiness may have changed and
    drained in legacy scan order (see the module docstring for the
    tie-break contract).  A drain is structured as passes::

        while worklist.begin_scan():
            progress = False
            while (pos := worklist.pop()) >= 0:
                ...examine pos; on a start set progress = True...
                # on core exhaustion: worklist.suspend(pos); return
            worklist.end_scan()
            if not progress:
                break

    ``seed`` during a scan routes positions ahead of the cursor into
    the current pass and positions at or behind it into the next pass;
    ``seed`` outside a scan always defers to the next pass.  Seeding is
    idempotent (a position queued for a pass is queued once).
    """

    __slots__ = ("_cur", "_nxt", "_in_cur", "_in_nxt", "_cursor", "_scanning")

    def __init__(self, n: int) -> None:
        self._cur: list[int] = []
        self._nxt: list[int] = []
        self._in_cur = bytearray(n)
        self._in_nxt = bytearray(n)
        self._cursor = -1
        self._scanning = False

    def seed(self, pos: int) -> None:
        """Mark ``pos`` for (re-)examination."""
        if self._scanning and pos > self._cursor:
            if not self._in_cur[pos]:
                self._in_cur[pos] = 1
                heappush(self._cur, pos)
        elif not self._in_nxt[pos]:
            self._in_nxt[pos] = 1
            heappush(self._nxt, pos)

    def seed_all(self, n: int) -> None:
        """Mark positions ``0..n-1`` (initial drain / fresh run)."""
        for pos in range(n):
            self.seed(pos)

    def begin_scan(self) -> bool:
        """Promote deferred seeds and open a pass.

        Returns ``False`` when there is nothing to examine (the drain
        is complete).
        """
        cur, nxt = self._cur, self._nxt
        in_cur, in_nxt = self._in_cur, self._in_nxt
        while nxt:
            pos = heappop(nxt)
            if in_nxt[pos]:
                in_nxt[pos] = 0
                if not in_cur[pos]:
                    in_cur[pos] = 1
                    heappush(cur, pos)
        self._cursor = -1
        self._scanning = True
        if cur:
            return True
        self._scanning = False
        return False

    def pop(self) -> int:
        """Next position of the current pass, or ``-1`` when the pass
        is exhausted."""
        cur, in_cur = self._cur, self._in_cur
        while cur:
            pos = heappop(cur)
            if in_cur[pos]:
                in_cur[pos] = 0
                self._cursor = pos
                return pos
        return -1

    def end_scan(self) -> None:
        self._scanning = False

    def suspend(self, pos: int) -> None:
        """Stop a drain mid-pass, keeping ``pos`` and every unexamined
        candidate queued for the next drain (core budget exhausted —
        the legacy loop returns without looking further)."""
        if not self._in_cur[pos]:
            self._in_cur[pos] = 1
            heappush(self._cur, pos)
        self._scanning = False

    def pending(self) -> Iterator[int]:
        """Queued positions (both passes), for introspection/tests."""
        seen = {p for p in self._cur if self._in_cur[p]}
        seen.update(p for p in self._nxt if self._in_nxt[p])
        return iter(sorted(seen))

    def __bool__(self) -> bool:
        return any(self._in_cur) or any(self._in_nxt)
