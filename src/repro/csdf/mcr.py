"""Maximum cycle ratio: the throughput bound of self-timed execution.

Classic result (Reiter 1968; Sriram & Bhattacharyya): the steady-state
iteration period of a self-timed HSDF execution with unlimited
processors equals the *maximum cycle ratio*

    MCR = max over cycles C of ( sum of execution times on C )
                               / ( sum of initial tokens on C )

CSDF graphs are analyzed through their exact HSDF expansion
(:mod:`repro.csdf.sdf`), whose serialization rings contribute the
per-actor "one firing at a time" cycles.

Two solvers are provided:

* :func:`max_cycle_ratio` — **Howard's policy iteration** (the
  max-plus spectral method of Cochet-Terrasson et al., surveyed by
  Dasdan as the fastest MCR algorithm in practice).  Each iteration
  evaluates one successor policy in O(V + E) and improves it greedily;
  convergence typically takes a handful of iterations instead of the
  ~50 full relaxation sweeps of the parametric search.
* :func:`mcr_reference` — the legacy parametric binary search with
  Bellman-Ford feasibility checks, kept as the independent oracle for
  the differential test suite (``tests/csdf/test_mcr_differential.py``).

Tests cross-validate both against each other and against the converged
``self_timed_execution`` period.  For the throughput bound over a whole
*parameter domain* (instead of one binding at a time) see
:mod:`repro.csdf.parametric`, which reuses this module's Howard core
via :func:`howard_critical_cycle` to certify its cyclic-core
candidates.

SCC granularity and warm starts
-------------------------------
Every cycle lies inside one strongly connected component of the event
graph, so ``MCR = max over SCCs of the per-SCC MCR``.
:func:`max_cycle_ratio` exploits this for edit traffic: the weight-free
*structure* of the expansion is memoized separately from the per-node
execution times (and carried across binding-only version bumps, see
:mod:`repro.cache`), the structure is partitioned into SCCs, and each
component's ratio is keyed in a cross-version content store by its
fingerprint (nodes, edges, weights).  Re-analysis after an edit
recomputes only the components whose fingerprint changed — an edit
outside the cyclic core re-solves a serialization ring, not the core.
Re-solved components warm-start Howard's iteration from the previous
converged policy for the same component shape
(:func:`howard` ``initial_policy=``), falling back to the cold initial
policy whenever the remembered policy is not feasible edge-for-edge.

Per-component ratios are extracted from the critical cycle by *exact*
rational summation (:class:`fractions.Fraction` over the cycle's float
weights and distances), which makes the stored value a pure function of
the component fingerprint — warm and cold re-analysis are bit-for-bit
identical even when policy iteration converges to a different
equally-critical cycle.

Examples
--------
>>> from repro.csdf import CSDFGraph
>>> from repro.csdf.mcr import max_cycle_ratio, throughput_bound
>>> g = CSDFGraph("loop")
>>> _ = g.add_actor("a", exec_time=2)
>>> _ = g.add_actor("b", exec_time=1)
>>> _ = g.add_channel("ab", "a", "b")
>>> _ = g.add_channel("ba", "b", "a", initial_tokens=2)
>>> max_cycle_ratio(g)  # cycle (2+1)/2 vs. the serialization rings 2, 1
2.0
>>> throughput_bound(g)
0.5
"""

from __future__ import annotations

from fractions import Fraction
from typing import Mapping

from ..cache import bindings_key, cached, content_store, register_binding_insensitive
from ..errors import AnalysisError
from .graph import CSDFGraph
from .sdf import expand_to_hsdf

#: Strict-improvement threshold of the policy iteration; values closer
#: than this are considered equal, which keeps ties from cycling.
_EPS = 1e-10

#: Cross-version content stores (see :func:`repro.cache.content_store`).
_SCC_STORE = "mcr_scc"          # component fingerprint -> exact ratio
_POLICY_STORE = "mcr_scc_policy"  # component shape -> converged policy


def _hsdf_structure(graph: CSDFGraph, bindings: Mapping | None):
    """The weight-free shape of the event graph the MCR is computed on.

    Returns ``(nodes, struct_edges)`` with ``struct_edges`` as
    ``(src, dst, t)`` tuples: ``t`` the *dependency distance* in
    iterations.  An expansion channel moving ``c`` tokens per firing
    with ``delta * c`` initial tokens means the consumer's firing of
    iteration ``i`` waits for the producer's firing of iteration
    ``i - delta`` — the distance is ``initial_tokens / c``, not the raw
    token count (using the raw count under-constrains rate->1 channels
    and yields an MCR below the true self-timed period).  Actors
    without a serialization ring get the standard one-iteration
    self-loop encoding "next iteration's firing waits for this one".

    Execution times are deliberately absent: every edge's weight is the
    producing firing's execution time, resolved per query by
    :func:`_node_weights`.  That split lets the memoized structure
    survive binding-only version bumps (execution-time edits) — it is
    registered binding-insensitive with :mod:`repro.cache`.
    """
    return cached(
        graph, ("hsdf_structure", bindings_key(bindings)),
        lambda: _build_structure(graph, bindings),
    )


def _build_structure(graph: CSDFGraph, bindings: Mapping | None):
    hsdf = expand_to_hsdf(graph, bindings)
    nodes = tuple(hsdf.actors)
    edges = []
    for channel in hsdf.channels.values():
        rate = int(channel.consumption.as_ints(None)[0])
        distance = channel.initial_tokens / rate if rate else 0.0
        edges.append((channel.src, channel.dst, distance))
    ringed = {c.src for c in hsdf.channels.values() if c.name.startswith("ring_")}
    for name in nodes:
        if name not in ringed:
            edges.append((name, name, 1.0))
    return nodes, tuple(edges)


register_binding_insensitive("hsdf_structure")


def _node_weights(graph: CSDFGraph, nodes) -> dict[str, float]:
    """Execution time of every expansion firing, read live from the
    source graph (node ``a#k`` is the k-th firing of actor ``a``, so
    its weight is phase ``k - 1`` of the actor's execution sequence).
    """
    weights = {}
    for name in nodes:
        base, _, firing = name.rpartition("#")
        weights[name] = graph.actor(base).exec_time(int(firing) - 1)
    return weights


def _hsdf_edges(graph: CSDFGraph, bindings: Mapping | None):
    """The weighted event graph: ``(nodes, edges)`` with ``edges`` as
    ``(src, dst, w, t)`` — structure from :func:`_hsdf_structure`,
    weights resolved against the graph's current execution times."""
    nodes, struct = _hsdf_structure(graph, bindings)
    weights = _node_weights(graph, nodes)
    return list(nodes), [(src, dst, weights[src], t) for src, dst, t in struct]


def _check_deadlock_free(n_nodes: int, out_edges) -> None:
    """Reject graphs with a token-free cycle of positive execution time.

    All edge weights are non-negative, so a strongly connected
    component of the zero-token subgraph containing an edge of positive
    weight necessarily contains a positive-weight token-free cycle —
    the graph deadlocks and the MCR is undefined.  Uses Tarjan's SCC
    (iterative) on the token-free edges only.
    """
    zero_adj: list[list[int]] = [[] for _ in range(n_nodes)]
    zero_weight: dict[tuple[int, int], float] = {}
    for u in range(n_nodes):
        for v, w, t in out_edges[u]:
            if t == 0.0:
                zero_adj[u].append(v)
                key = (u, v)
                zero_weight[key] = max(zero_weight.get(key, 0.0), w)
    comp = _tarjan_components(n_nodes, zero_adj)
    for (u, v), w in zero_weight.items():
        in_cycle = comp[u] == comp[v] and (u != v or v in zero_adj[u])
        if in_cycle and w > _EPS:
            raise AnalysisError(
                "cycle with zero tokens and positive execution time: the "
                "graph deadlocks, MCR undefined"
            )


def _tarjan_components(n_nodes: int, adj) -> list[int]:
    """Iterative Tarjan: component id per node (ids are arbitrary but
    deterministic for a given adjacency)."""
    index = [0] * n_nodes
    low = [0] * n_nodes
    on_stack = [False] * n_nodes
    comp = [-1] * n_nodes
    counter = 1
    stack: list[int] = []
    comp_count = 0
    for root in range(n_nodes):
        if index[root]:
            continue
        work = [(root, 0)]
        while work:
            node, edge_pos = work[-1]
            if edge_pos == 0:
                index[node] = low[node] = counter
                counter += 1
                stack.append(node)
                on_stack[node] = True
            advanced = False
            for pos in range(edge_pos, len(adj[node])):
                succ = adj[node][pos]
                if not index[succ]:
                    work[-1] = (node, pos + 1)
                    work.append((succ, 0))
                    advanced = True
                    break
                if on_stack[succ] and low[node] > index[succ]:
                    low[node] = index[succ]
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                if low[parent] > low[node]:
                    low[parent] = low[node]
            if low[node] == index[node]:
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    comp[member] = comp_count
                    if member == node:
                        break
                comp_count += 1
    return comp


def _scc_components(nodes, struct_edges):
    """Cycle-capable SCCs of the weight-free structure.

    Returns ``[(comp_nodes, comp_edges), ...]`` with ``comp_nodes`` in
    global node order and ``comp_edges`` the intra-component subset of
    ``struct_edges`` in global edge order — a pure, deterministic
    function of the inputs, so identical structures always yield
    identical component fingerprints.  Singleton components without a
    self-edge lie on no cycle and are dropped (they contribute ratio 0).
    Components are ordered by their smallest member's node index.
    """
    n = len(nodes)
    idx = {name: i for i, name in enumerate(nodes)}
    adj: list[list[int]] = [[] for _ in range(n)]
    has_self = [False] * n
    for src, dst, _t in struct_edges:
        u, v = idx[src], idx[dst]
        if u == v:
            has_self[u] = True
        else:
            adj[u].append(v)
    comp = _tarjan_components(n, adj)
    members: dict[int, list[int]] = {}
    for u in range(n):
        members.setdefault(comp[u], []).append(u)
    cyclic: list[tuple] = []
    for group in members.values():
        if len(group) == 1 and not has_self[group[0]]:
            continue
        in_comp = set(group)
        comp_nodes = tuple(nodes[u] for u in sorted(group))
        comp_edges = tuple(
            e for e in struct_edges
            if idx[e[0]] in in_comp and idx[e[1]] in in_comp
        )
        cyclic.append((comp_nodes, comp_edges))
    cyclic.sort(key=lambda item: item[0])
    return cyclic


def _exact_cycle_ratio(cycle_edges) -> float:
    """The cycle's ratio by exact rational summation of its float
    weights and distances — independent of edge order and of which
    equally-critical cycle policy iteration happened to converge to."""
    if not cycle_edges:
        return 0.0
    weight = sum(Fraction(w) for _, _, w, _ in cycle_edges)
    tokens = sum(Fraction(t) for _, _, _, t in cycle_edges)
    if tokens <= 0:
        return 0.0  # zero-weight token-free cycle (deadlock already excluded)
    return float(weight / tokens)


def howard(nodes: list[str], edges, initial_policy: Mapping | None = None):
    """Howard's iteration: MCR, critical cycle, and converged policy.

    Returns ``(mcr, cycle_edges, policy)``: ``cycle_edges`` the list of
    ``(src, dst, weight, distance)`` edges of one cycle attaining the
    MCR (empty for an acyclic graph), and ``policy`` a mapping
    ``node -> (successor, distance)`` describing the converged policy —
    feed it back as ``initial_policy`` to warm-start a later solve of a
    graph with the same shape (same nodes, edges and distances, e.g.
    after an execution-time edit).  An infeasible ``initial_policy``
    (any node whose remembered edge no longer exists) is ignored
    entirely in favor of the cold start.  Returns ``None`` when the
    iteration did not converge (caller falls back to the binary
    search).  The MCR is extracted from the critical cycle by exact
    rational summation, so it is identical however the solve was
    seeded.
    """
    solved = _howard_solve(nodes, edges, initial_policy=initial_policy)
    if solved is None:
        return None
    ratio, value, policy, live_nodes, idx = solved
    del value
    if not live_nodes:
        return 0.0, [], {}
    best = max(live_nodes, key=lambda u: ratio[u])
    # Walk the (converged) policy from the argmax node: the walk enters
    # a policy cycle whose ratio is exactly ratio[best] — the MCR.
    seen: dict[int, int] = {}
    path: list[int] = []
    u = best
    while u not in seen:
        seen[u] = len(path)
        path.append(u)
        u = policy[u][0]
    cycle = path[seen[u]:]
    names = {i: name for name, i in idx.items()}
    cycle_edges = []
    for x in cycle:
        succ, w, t = policy[x]
        cycle_edges.append((names[x], names[succ], w, t))
    policy_out = {
        names[u]: (names[policy[u][0]], policy[u][2]) for u in live_nodes
    }
    return _exact_cycle_ratio(cycle_edges), cycle_edges, policy_out


def howard_critical_cycle(nodes: list[str], edges):
    """Howard's iteration plus the critical cycle that attains the MCR.

    Returns ``(mcr, cycle_edges)`` (see :func:`howard`), or ``None``
    when the iteration did not converge.  Used by
    :mod:`repro.csdf.parametric` to turn the float verdict into an
    exact rational certificate (the cycle's weights and distances are
    re-summed exactly).
    """
    solved = howard(nodes, edges)
    if solved is None:
        return None
    mcr, cycle_edges, _policy = solved
    return mcr, cycle_edges


def _howard_solve(nodes: list[str], edges, initial_policy: Mapping | None = None):
    """The shared Howard iteration.

    Returns ``(ratio, value, policy, live_nodes, idx)`` after
    convergence (``live_nodes`` empty for acyclic graphs) or ``None``
    when the iteration hit its sweep budget without stabilizing.
    ``initial_policy`` optionally seeds the iteration (all-or-nothing:
    every live node must map to an existing edge, else the default
    heaviest-edge start is used for all of them).
    """
    n = len(nodes)
    idx = {name: i for i, name in enumerate(nodes)}
    out_edges: list[list[tuple[int, float, float]]] = [[] for _ in range(n)]
    for src, dst, w, t in edges:
        out_edges[idx[src]].append((idx[dst], w, t))

    _check_deadlock_free(n, out_edges)

    # Trim nodes with no outgoing edges (they are on no cycle); repeat
    # until every remaining node keeps at least one successor.
    alive = [bool(out_edges[u]) for u in range(n)]
    changed = True
    while changed:
        changed = False
        for u in range(n):
            if not alive[u]:
                continue
            if not any(alive[v] for v, _, _ in out_edges[u]):
                alive[u] = False
                changed = True
    live_nodes = [u for u in range(n) if alive[u]]
    if not live_nodes:
        return [0.0] * n, [0.0] * n, [None] * n, [], idx
    succs: list[list[tuple[int, float, float]]] = [
        [(v, w, t) for v, w, t in out_edges[u] if alive[v]] if alive[u] else []
        for u in range(n)
    ]

    policy: list[tuple[int, float, float] | None] = [None] * n
    seeded = initial_policy is not None
    if seeded:
        # Warm start from a previous converged policy (same shape):
        # match each remembered (successor, distance) against the live
        # edges; any miss abandons the whole seed.
        for u in live_nodes:
            remembered = initial_policy.get(nodes[u])
            edge = None
            if remembered is not None:
                v_want = idx.get(remembered[0])
                if v_want is not None:
                    for candidate in succs[u]:
                        if candidate[0] == v_want and candidate[2] == remembered[1]:
                            edge = candidate
                            break
            if edge is None:
                seeded = False
                break
            policy[u] = edge
    if not seeded:
        # Initial policy: the heaviest edge out of every live node.
        for u in live_nodes:
            policy[u] = max(succs[u], key=lambda e: e[1])

    ratio = [0.0] * n
    value = [0.0] * n
    max_iters = max(64, 4 * n)
    for _ in range(max_iters):
        # -- policy evaluation: every node follows its policy edge into
        # exactly one cycle; compute cycle ratios and relative values.
        visited = [0] * n  # 0 = new, 1 = in progress (this pass), 2 = done
        order_stamp = [0] * n
        for start in live_nodes:
            if visited[start]:
                continue
            # Walk until a node seen in this walk or a finished node.
            path = []
            u = start
            while not visited[u]:
                visited[u] = 1
                order_stamp[u] = len(path)
                path.append(u)
                u = policy[u][0]
            if visited[u] == 1:
                # Found a new cycle: path[order_stamp[u]:] is the cycle.
                cycle = path[order_stamp[u]:]
                w_sum = sum(policy[x][1] for x in cycle)
                t_sum = sum(policy[x][2] for x in cycle)
                if t_sum <= 0.0:
                    if w_sum > _EPS:
                        raise AnalysisError(
                            "cycle with zero tokens and positive execution "
                            "time: the graph deadlocks, MCR undefined"
                        )
                    lam = 0.0
                else:
                    lam = w_sum / t_sum
                # Values around the cycle: fix the entry node at 0 and
                # walk backwards (value[x] = w - lam*t + value[succ]).
                ratio[u] = lam
                value[u] = 0.0
                for x in reversed(cycle[1:]):
                    succ, w, t = policy[x]
                    ratio[x] = lam
                    value[x] = w - lam * t + value[succ]
                for x in cycle:
                    visited[x] = 2
                # Tree part of the walk (path before the cycle).
                for x in reversed(path[: order_stamp[u]]):
                    succ, w, t = policy[x]
                    ratio[x] = ratio[succ]
                    value[x] = w - ratio[x] * t + value[succ]
                    visited[x] = 2
            else:
                # Ran into an already-evaluated region.
                for x in reversed(path):
                    succ, w, t = policy[x]
                    ratio[x] = ratio[succ]
                    value[x] = w - ratio[x] * t + value[succ]
                    visited[x] = 2

        # -- policy improvement: prefer successors with a higher cycle
        # ratio; among equals, a strictly better value.
        improved = False
        for u in live_nodes:
            best = policy[u]
            best_ratio = ratio[best[0]]
            best_value = best[1] - best_ratio * best[2] + value[best[0]]
            for edge in succs[u]:
                v, w, t = edge
                if ratio[v] > best_ratio + _EPS:
                    best, best_ratio = edge, ratio[v]
                    best_value = w - ratio[v] * t + value[v]
                    improved = True
                elif abs(ratio[v] - best_ratio) <= _EPS:
                    candidate = w - best_ratio * t + value[v]
                    if candidate > best_value + _EPS:
                        best, best_value = edge, candidate
                        improved = True
            policy[u] = best
        if not improved:
            return ratio, value, policy, live_nodes, idx
    return None  # signal non-convergence; caller falls back


def mcr_reference(
    graph: CSDFGraph,
    bindings: Mapping | None = None,
    tolerance: float = 1e-6,
) -> float:
    """Legacy MCR solver: parametric binary search on the period
    candidate ``lambda``, feasible iff the edge weights
    ``exec(src) - lambda * tokens(e)`` admit no positive cycle (checked
    with Bellman-Ford longest-path relaxation).

    Kept verbatim as the independent oracle the differential test
    harness cross-validates Howard's iteration against.  The result is
    within ``tolerance`` of the true MCR.
    """
    nodes, edges = _hsdf_edges(graph, bindings)
    if not edges:
        return 0.0
    lo = 0.0
    hi = sum(_node_weights(graph, nodes).values()) + 1.0
    if _has_positive_cycle(nodes, edges, hi):
        raise AnalysisError(
            "cycle with zero tokens and positive execution time: the "
            "graph deadlocks, MCR undefined"
        )
    while hi - lo > tolerance:
        mid = (lo + hi) / 2.0
        if _has_positive_cycle(nodes, edges, mid):
            lo = mid
        else:
            hi = mid
    return hi


def _has_positive_cycle(nodes, edges, lam: float) -> bool:
    """Positive-weight cycle detection for weights exec(src) - lam*tokens.

    Bellman-Ford longest-path relaxation: a further relaxation after
    |V| - 1 rounds means a positive cycle exists.
    """
    dist = {node: 0.0 for node in nodes}
    for _ in range(len(nodes) - 1):
        changed = False
        for src, dst, weight, tokens in edges:
            w = weight - lam * tokens
            if dist[src] + w > dist[dst] + 1e-12:
                dist[dst] = dist[src] + w
                changed = True
        if not changed:
            return False
    for src, dst, weight, tokens in edges:
        w = weight - lam * tokens
        if dist[src] + w > dist[dst] + 1e-12:
            return True
    return False


def max_cycle_ratio(
    graph: CSDFGraph,
    bindings: Mapping | None = None,
    tolerance: float = 1e-6,
) -> float:
    """The MCR of the graph's HSDF expansion (0.0 for acyclic graphs
    whose expansion has no token-bearing cycle, i.e. unbounded
    single-iteration throughput; with serialization rings there is
    always at least the per-actor cycle, so the result is the
    bottleneck-actor bound or worse).

    Computed per strongly connected component with Howard's policy
    iteration (exact up to float rounding); component results are
    memoized across graph versions by content fingerprint, so
    re-analysis after an edit re-solves only the components the edit
    touched.  ``tolerance`` is kept for API compatibility and only
    governs the binary-search fallback on the rare non-convergent
    component.  Results are memoized per graph version.
    """
    return cached(
        graph, ("mcr", bindings_key(bindings)),
        lambda: _max_cycle_ratio(graph, bindings, tolerance),
    )


def _max_cycle_ratio(graph: CSDFGraph, bindings: Mapping | None, tolerance: float) -> float:
    nodes, struct = _hsdf_structure(graph, bindings)
    if not struct:
        return 0.0
    weights = _node_weights(graph, nodes)
    best = 0.0
    for comp_nodes, comp_edges in _scc_components(nodes, struct):
        ratio = _component_mcr(graph, comp_nodes, comp_edges, weights, tolerance)
        if ratio > best:
            best = ratio
    return best


def _component_mcr(graph, comp_nodes, comp_edges, weights, tolerance) -> float:
    """One SCC's cycle ratio, memoized across versions by fingerprint.

    The fingerprint covers everything the ratio depends on — the
    component's nodes, its weight-free edges, and its node weights — so
    a store hit is exact by construction; deadlocked components are
    never stored (the raise propagates to the per-version cache, which
    memoizes exceptions itself).
    """
    store = content_store(graph, _SCC_STORE)
    comp_weights = tuple(weights[name] for name in comp_nodes)
    key = (comp_nodes, comp_edges, comp_weights)
    hit = store.get(key)
    if hit is not None:
        return hit
    edges = [(src, dst, weights[src], t) for src, dst, t in comp_edges]
    policies = content_store(graph, _POLICY_STORE)
    shape = (comp_nodes, comp_edges)
    solved = howard(list(comp_nodes), edges, initial_policy=policies.get(shape))
    if solved is None:
        ratio = _component_reference(comp_nodes, edges, comp_weights, tolerance)
    else:
        ratio, _cycle, policy = solved
        policies.put(shape, policy)
    store.put(key, ratio)
    return ratio


def _component_reference(comp_nodes, edges, comp_weights, tolerance) -> float:
    """Binary-search fallback for a non-convergent component (same
    search as :func:`mcr_reference`, restricted to the component)."""
    lo = 0.0
    hi = sum(comp_weights) + 1.0
    if _has_positive_cycle(comp_nodes, edges, hi):
        raise AnalysisError(
            "cycle with zero tokens and positive execution time: the "
            "graph deadlocks, MCR undefined"
        )
    while hi - lo > tolerance:
        mid = (lo + hi) / 2.0
        if _has_positive_cycle(comp_nodes, edges, mid):
            lo = mid
        else:
            hi = mid
    return hi


def throughput_bound(graph: CSDFGraph, bindings: Mapping | None = None) -> float:
    """Iterations per unit time in steady state (1 / MCR)."""
    period = max_cycle_ratio(graph, bindings)
    return float("inf") if period <= 0 else 1.0 / period
