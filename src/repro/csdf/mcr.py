"""Maximum cycle ratio: the throughput bound of self-timed execution.

Classic result (Reiter 1968; Sriram & Bhattacharyya): the steady-state
iteration period of a self-timed HSDF execution with unlimited
processors equals the *maximum cycle ratio*

    MCR = max over cycles C of ( sum of execution times on C )
                               / ( sum of initial tokens on C )

CSDF graphs are analyzed through their exact HSDF expansion
(:mod:`repro.csdf.sdf`), whose serialization rings contribute the
per-actor "one firing at a time" cycles.

Two solvers are provided:

* :func:`max_cycle_ratio` — **Howard's policy iteration** (the
  max-plus spectral method of Cochet-Terrasson et al., surveyed by
  Dasdan as the fastest MCR algorithm in practice).  Each iteration
  evaluates one successor policy in O(V + E) and improves it greedily;
  convergence typically takes a handful of iterations instead of the
  ~50 full relaxation sweeps of the parametric search.
* :func:`mcr_reference` — the legacy parametric binary search with
  Bellman-Ford feasibility checks, kept as the independent oracle for
  the differential test suite (``tests/csdf/test_mcr_differential.py``).

Tests cross-validate both against each other and against the converged
``self_timed_execution`` period.  For the throughput bound over a whole
*parameter domain* (instead of one binding at a time) see
:mod:`repro.csdf.parametric`, which reuses this module's Howard core
via :func:`howard_critical_cycle` to certify its cyclic-core
candidates.

Examples
--------
>>> from repro.csdf import CSDFGraph
>>> from repro.csdf.mcr import max_cycle_ratio, throughput_bound
>>> g = CSDFGraph("loop")
>>> _ = g.add_actor("a", exec_time=2)
>>> _ = g.add_actor("b", exec_time=1)
>>> _ = g.add_channel("ab", "a", "b")
>>> _ = g.add_channel("ba", "b", "a", initial_tokens=2)
>>> max_cycle_ratio(g)  # cycle (2+1)/2 vs. the serialization rings 2, 1
2.0
>>> throughput_bound(g)
0.5
"""

from __future__ import annotations

from typing import Mapping

from ..cache import bindings_key, cached
from ..errors import AnalysisError
from .graph import CSDFGraph
from .sdf import expand_to_hsdf

#: Strict-improvement threshold of the policy iteration; values closer
#: than this are considered equal, which keeps ties from cycling.
_EPS = 1e-10


def _hsdf_edges(graph: CSDFGraph, bindings: Mapping | None):
    """The weighted event graph the MCR is computed on.

    Returns ``(nodes, edges)`` with ``edges`` as ``(src, dst, w, t)``:
    ``w`` the execution time of the producing firing and ``t`` the
    *dependency distance* in iterations.  An expansion channel moving
    ``c`` tokens per firing with ``delta * c`` initial tokens means the
    consumer's firing of iteration ``i`` waits for the producer's
    firing of iteration ``i - delta`` — the distance is
    ``initial_tokens / c``, not the raw token count (using the raw
    count under-constrains rate->1 channels and yields an MCR below
    the true self-timed period).  Actors without a serialization ring
    get the standard one-iteration self-loop encoding "next iteration's
    firing waits for this one".
    """
    hsdf = expand_to_hsdf(graph, bindings)
    nodes = list(hsdf.actors)
    edges = []
    for channel in hsdf.channels.values():
        exec_time = hsdf.actor(channel.src).exec_time(0)
        rate = int(channel.consumption.as_ints(None)[0])
        distance = channel.initial_tokens / rate if rate else 0.0
        edges.append((channel.src, channel.dst, exec_time, distance))
    ringed = {c.src for c in hsdf.channels.values() if c.name.startswith("ring_")}
    for name in nodes:
        if name not in ringed:
            edges.append((name, name, hsdf.actor(name).exec_time(0), 1.0))
    return nodes, edges


def _check_deadlock_free(n_nodes: int, out_edges) -> None:
    """Reject graphs with a token-free cycle of positive execution time.

    All edge weights are non-negative, so a strongly connected
    component of the zero-token subgraph containing an edge of positive
    weight necessarily contains a positive-weight token-free cycle —
    the graph deadlocks and the MCR is undefined.  Uses Tarjan's SCC
    (iterative) on the token-free edges only.
    """
    zero_adj: list[list[int]] = [[] for _ in range(n_nodes)]
    zero_weight: dict[tuple[int, int], float] = {}
    for u in range(n_nodes):
        for v, w, t in out_edges[u]:
            if t == 0.0:
                zero_adj[u].append(v)
                key = (u, v)
                zero_weight[key] = max(zero_weight.get(key, 0.0), w)
    index = [0] * n_nodes
    low = [0] * n_nodes
    on_stack = [False] * n_nodes
    comp = [-1] * n_nodes
    counter = 1
    stack: list[int] = []
    comp_count = 0
    for root in range(n_nodes):
        if index[root]:
            continue
        work = [(root, 0)]
        while work:
            node, edge_pos = work[-1]
            if edge_pos == 0:
                index[node] = low[node] = counter
                counter += 1
                stack.append(node)
                on_stack[node] = True
            advanced = False
            for pos in range(edge_pos, len(zero_adj[node])):
                succ = zero_adj[node][pos]
                if not index[succ]:
                    work[-1] = (node, pos + 1)
                    work.append((succ, 0))
                    advanced = True
                    break
                if on_stack[succ] and low[node] > index[succ]:
                    low[node] = index[succ]
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                if low[parent] > low[node]:
                    low[parent] = low[node]
            if low[node] == index[node]:
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    comp[member] = comp_count
                    if member == node:
                        break
                comp_count += 1
    for (u, v), w in zero_weight.items():
        in_cycle = comp[u] == comp[v] and (u != v or v in zero_adj[u])
        if in_cycle and w > _EPS:
            raise AnalysisError(
                "cycle with zero tokens and positive execution time: the "
                "graph deadlocks, MCR undefined"
            )


def howard_critical_cycle(nodes: list[str], edges):
    """Howard's iteration plus the critical cycle that attains the MCR.

    Returns ``(mcr, cycle_edges)`` with ``cycle_edges`` the list of
    ``(src, dst, weight, distance)`` edges of one cycle whose ratio
    equals the MCR (empty for an acyclic/ratio-0 graph), or ``None``
    when the iteration did not converge.  Used by
    :mod:`repro.csdf.parametric` to turn the float verdict into an
    exact rational certificate (the cycle's weights and distances are
    re-summed exactly).
    """
    solved = _howard_solve(nodes, edges)
    if solved is None:
        return None
    ratio, value, policy, live_nodes, idx = solved
    del value
    if not live_nodes:
        return 0.0, []
    best = max(live_nodes, key=lambda u: ratio[u])
    # Walk the (converged) policy from the argmax node: the walk enters
    # a policy cycle whose ratio is exactly ratio[best] — the MCR.
    seen: dict[int, int] = {}
    path: list[int] = []
    u = best
    while u not in seen:
        seen[u] = len(path)
        path.append(u)
        u = policy[u][0]
    cycle = path[seen[u]:]
    names = {i: name for name, i in idx.items()}
    cycle_edges = []
    for x in cycle:
        succ, w, t = policy[x]
        cycle_edges.append((names[x], names[succ], w, t))
    return max(ratio[u] for u in live_nodes), cycle_edges


def _howard(nodes: list[str], edges) -> float | None:
    """Maximum cycle ratio by Howard's policy iteration.

    Works on any weighted event graph whose cycles all carry tokens
    (callers run :func:`_check_deadlock_free` first).  Nodes that
    cannot reach a cycle are trimmed; if nothing remains the graph is
    acyclic and the ratio is 0.  Returns ``None`` on non-convergence
    (caller falls back to the binary search).
    """
    solved = _howard_solve(nodes, edges)
    if solved is None:
        return None
    ratio, _value, _policy, live_nodes, _idx = solved
    if not live_nodes:
        return 0.0
    return max(ratio[u] for u in live_nodes)


def _howard_solve(nodes: list[str], edges):
    """The shared Howard iteration.

    Returns ``(ratio, value, policy, live_nodes, idx)`` after
    convergence (``live_nodes`` empty for acyclic graphs) or ``None``
    when the iteration hit its sweep budget without stabilizing.
    """
    n = len(nodes)
    idx = {name: i for i, name in enumerate(nodes)}
    out_edges: list[list[tuple[int, float, float]]] = [[] for _ in range(n)]
    for src, dst, w, t in edges:
        out_edges[idx[src]].append((idx[dst], w, t))

    _check_deadlock_free(n, out_edges)

    # Trim nodes with no outgoing edges (they are on no cycle); repeat
    # until every remaining node keeps at least one successor.
    alive = [bool(out_edges[u]) for u in range(n)]
    changed = True
    while changed:
        changed = False
        for u in range(n):
            if not alive[u]:
                continue
            if not any(alive[v] for v, _, _ in out_edges[u]):
                alive[u] = False
                changed = True
    live_nodes = [u for u in range(n) if alive[u]]
    if not live_nodes:
        return [0.0] * n, [0.0] * n, [None] * n, [], idx
    succs: list[list[tuple[int, float, float]]] = [
        [(v, w, t) for v, w, t in out_edges[u] if alive[v]] if alive[u] else []
        for u in range(n)
    ]

    # Initial policy: the heaviest edge out of every live node.
    policy: list[tuple[int, float, float] | None] = [None] * n
    for u in live_nodes:
        policy[u] = max(succs[u], key=lambda e: e[1])

    ratio = [0.0] * n
    value = [0.0] * n
    max_iters = max(64, 4 * n)
    for _ in range(max_iters):
        # -- policy evaluation: every node follows its policy edge into
        # exactly one cycle; compute cycle ratios and relative values.
        visited = [0] * n  # 0 = new, 1 = in progress (this pass), 2 = done
        order_stamp = [0] * n
        for start in live_nodes:
            if visited[start]:
                continue
            # Walk until a node seen in this walk or a finished node.
            path = []
            u = start
            while not visited[u]:
                visited[u] = 1
                order_stamp[u] = len(path)
                path.append(u)
                u = policy[u][0]
            if visited[u] == 1:
                # Found a new cycle: path[order_stamp[u]:] is the cycle.
                cycle = path[order_stamp[u]:]
                w_sum = sum(policy[x][1] for x in cycle)
                t_sum = sum(policy[x][2] for x in cycle)
                if t_sum <= 0.0:
                    if w_sum > _EPS:
                        raise AnalysisError(
                            "cycle with zero tokens and positive execution "
                            "time: the graph deadlocks, MCR undefined"
                        )
                    lam = 0.0
                else:
                    lam = w_sum / t_sum
                # Values around the cycle: fix the entry node at 0 and
                # walk backwards (value[x] = w - lam*t + value[succ]).
                ratio[u] = lam
                value[u] = 0.0
                for x in reversed(cycle[1:]):
                    succ, w, t = policy[x]
                    ratio[x] = lam
                    value[x] = w - lam * t + value[succ]
                for x in cycle:
                    visited[x] = 2
                # Tree part of the walk (path before the cycle).
                for x in reversed(path[: order_stamp[u]]):
                    succ, w, t = policy[x]
                    ratio[x] = ratio[succ]
                    value[x] = w - ratio[x] * t + value[succ]
                    visited[x] = 2
            else:
                # Ran into an already-evaluated region.
                for x in reversed(path):
                    succ, w, t = policy[x]
                    ratio[x] = ratio[succ]
                    value[x] = w - ratio[x] * t + value[succ]
                    visited[x] = 2

        # -- policy improvement: prefer successors with a higher cycle
        # ratio; among equals, a strictly better value.
        improved = False
        for u in live_nodes:
            best = policy[u]
            best_ratio = ratio[best[0]]
            best_value = best[1] - best_ratio * best[2] + value[best[0]]
            for edge in succs[u]:
                v, w, t = edge
                if ratio[v] > best_ratio + _EPS:
                    best, best_ratio = edge, ratio[v]
                    best_value = w - ratio[v] * t + value[v]
                    improved = True
                elif abs(ratio[v] - best_ratio) <= _EPS:
                    candidate = w - best_ratio * t + value[v]
                    if candidate > best_value + _EPS:
                        best, best_value = edge, candidate
                        improved = True
            policy[u] = best
        if not improved:
            return ratio, value, policy, live_nodes, idx
    return None  # signal non-convergence; caller falls back


def mcr_reference(
    graph: CSDFGraph,
    bindings: Mapping | None = None,
    tolerance: float = 1e-6,
) -> float:
    """Legacy MCR solver: parametric binary search on the period
    candidate ``lambda``, feasible iff the edge weights
    ``exec(src) - lambda * tokens(e)`` admit no positive cycle (checked
    with Bellman-Ford longest-path relaxation).

    Kept verbatim as the independent oracle the differential test
    harness cross-validates Howard's iteration against.  The result is
    within ``tolerance`` of the true MCR.
    """
    nodes, edges = _hsdf_edges(graph, bindings)
    if not edges:
        return 0.0
    hsdf = expand_to_hsdf(graph, bindings)
    lo = 0.0
    hi = sum(hsdf.actor(n).exec_time(0) for n in nodes) + 1.0
    if _has_positive_cycle(nodes, edges, hi):
        raise AnalysisError(
            "cycle with zero tokens and positive execution time: the "
            "graph deadlocks, MCR undefined"
        )
    while hi - lo > tolerance:
        mid = (lo + hi) / 2.0
        if _has_positive_cycle(nodes, edges, mid):
            lo = mid
        else:
            hi = mid
    return hi


def _has_positive_cycle(nodes, edges, lam: float) -> bool:
    """Positive-weight cycle detection for weights exec(src) - lam*tokens.

    Bellman-Ford longest-path relaxation: a further relaxation after
    |V| - 1 rounds means a positive cycle exists.
    """
    dist = {node: 0.0 for node in nodes}
    for _ in range(len(nodes) - 1):
        changed = False
        for src, dst, weight, tokens in edges:
            w = weight - lam * tokens
            if dist[src] + w > dist[dst] + 1e-12:
                dist[dst] = dist[src] + w
                changed = True
        if not changed:
            return False
    for src, dst, weight, tokens in edges:
        w = weight - lam * tokens
        if dist[src] + w > dist[dst] + 1e-12:
            return True
    return False


def max_cycle_ratio(
    graph: CSDFGraph,
    bindings: Mapping | None = None,
    tolerance: float = 1e-6,
) -> float:
    """The MCR of the graph's HSDF expansion (0.0 for acyclic graphs
    whose expansion has no token-bearing cycle, i.e. unbounded
    single-iteration throughput; with serialization rings there is
    always at least the per-actor cycle, so the result is the
    bottleneck-actor bound or worse).

    Computed with Howard's policy iteration (exact up to float
    rounding); ``tolerance`` is kept for API compatibility and only
    governs the binary-search fallback on the rare non-convergent
    instance.  Results are memoized per graph version.
    """
    return cached(
        graph, ("mcr", bindings_key(bindings)),
        lambda: _max_cycle_ratio(graph, bindings, tolerance),
    )


def _max_cycle_ratio(graph: CSDFGraph, bindings: Mapping | None, tolerance: float) -> float:
    nodes, edges = _hsdf_edges(graph, bindings)
    if not edges:
        return 0.0
    result = _howard(nodes, edges)
    if result is None:
        return mcr_reference(graph, bindings, tolerance)
    return result


def throughput_bound(graph: CSDFGraph, bindings: Mapping | None = None) -> float:
    """Iterations per unit time in steady state (1 / MCR)."""
    period = max_cycle_ratio(graph, bindings)
    return float("inf") if period <= 0 else 1.0 / period
