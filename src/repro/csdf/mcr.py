"""Maximum cycle ratio: the throughput bound of self-timed execution.

Classic result (Reiter 1968; Sriram & Bhattacharyya): the steady-state
iteration period of a self-timed HSDF execution with unlimited
processors equals the *maximum cycle ratio*

    MCR = max over cycles C of ( sum of execution times on C )
                               / ( sum of initial tokens on C )

CSDF graphs are analyzed through their exact HSDF expansion
(:mod:`repro.csdf.sdf`), whose serialization rings contribute the
per-actor "one firing at a time" cycles.  The MCR is computed by
parametric binary search: the period candidate ``lambda`` is feasible
iff the edge weights ``exec(src) - lambda * tokens(e)`` admit no
positive cycle (checked with Bellman-Ford on the negated weights).

Tests cross-validate: ``self_timed_execution`` with enough cores and
iterations converges to the MCR period.
"""

from __future__ import annotations

from typing import Mapping

from ..errors import AnalysisError
from .graph import CSDFGraph
from .sdf import expand_to_hsdf


def _has_positive_cycle(nodes, edges, lam: float) -> bool:
    """Positive-weight cycle detection for weights exec(src) - lam*tokens.

    Bellman-Ford longest-path relaxation: a further relaxation after
    |V| - 1 rounds means a positive cycle exists.
    """
    dist = {node: 0.0 for node in nodes}
    for _ in range(len(nodes) - 1):
        changed = False
        for src, dst, weight in edges:
            w = weight[0] - lam * weight[1]
            if dist[src] + w > dist[dst] + 1e-12:
                dist[dst] = dist[src] + w
                changed = True
        if not changed:
            return False
    for src, dst, weight in edges:
        w = weight[0] - lam * weight[1]
        if dist[src] + w > dist[dst] + 1e-12:
            return True
    return False


def max_cycle_ratio(
    graph: CSDFGraph,
    bindings: Mapping | None = None,
    tolerance: float = 1e-6,
) -> float:
    """The MCR of the graph's HSDF expansion (0.0 for acyclic graphs
    whose expansion has no token-bearing cycle, i.e. unbounded
    single-iteration throughput; with serialization rings there is
    always at least the per-actor cycle, so the result is the
    bottleneck-actor bound or worse)."""
    hsdf = expand_to_hsdf(graph, bindings)
    nodes = list(hsdf.actors)
    edges = []
    for channel in hsdf.channels.values():
        exec_time = hsdf.actor(channel.src).exec_time(0)
        edges.append((channel.src, channel.dst, (exec_time, float(channel.initial_tokens))))
    # Self-firing constraint for actors without rings (q == 1): the next
    # iteration's firing waits for this one — a self-loop with 1 token.
    ringed = {c.src for c in hsdf.channels.values() if c.name.startswith("ring_")}
    for name in nodes:
        if name not in ringed:
            edges.append((name, name, (hsdf.actor(name).exec_time(0), 1.0)))

    if not edges:
        return 0.0
    lo = 0.0
    hi = sum(hsdf.actor(n).exec_time(0) for n in nodes) + 1.0
    if _has_positive_cycle(nodes, edges, hi):
        raise AnalysisError(
            "cycle with zero tokens and positive execution time: the "
            "graph deadlocks, MCR undefined"
        )
    while hi - lo > tolerance:
        mid = (lo + hi) / 2.0
        if _has_positive_cycle(nodes, edges, mid):
            lo = mid
        else:
            hi = mid
    return hi


def throughput_bound(graph: CSDFGraph, bindings: Mapping | None = None) -> float:
    """Iterations per unit time in steady state (1 / MCR)."""
    period = max_cycle_ratio(graph, bindings)
    return float("inf") if period <= 0 else 1.0 / period
