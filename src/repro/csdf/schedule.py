"""Sequential schedule construction for CSDF graphs.

Builds Periodic Admissible Sequential Schedules (PASS): firing
sequences realizing one graph iteration (each actor fires exactly its
repetition count and every channel returns to its initial fill level —
Definition 1 of the paper).  Construction is by symbolic execution of
the firing rules, which doubles as the classic liveness check: a
consistent graph is live iff the construction terminates.

Two selection policies are provided:

``"grouped"``
    keep firing the same actor while possible — produces the compact
    single-appearance schedules the paper quotes, e.g.
    ``(a3)^2 (a1)^3 (a2)^2`` for Fig. 1;
``"round_robin"``
    cycle through actors firing at most once each pass — produces
    interleaved schedules such as ``(B C C B)`` needed for tightly
    cyclic graphs (Fig. 4(b)), and usually lower buffer peaks.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Mapping, Sequence

from ..cache import bindings_key, cached, register_binding_insensitive
from ..errors import DeadlockError, SimulationError
from .analysis import concrete_repetition_vector
from .graph import CSDFGraph
from .simulation import TokenState

POLICIES = ("grouped", "round_robin")

# Liveness is a token-counting property: execution times never enter
# the schedule probe, so the verdict survives binding-only bumps.
register_binding_insensitive("is_live")


class SequentialSchedule:
    """An ordered firing sequence for one iteration of a graph."""

    __slots__ = ("firings",)

    def __init__(self, firings: Sequence[str]):
        self.firings = tuple(firings)

    def __len__(self) -> int:
        return len(self.firings)

    def __iter__(self):
        return iter(self.firings)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, SequentialSchedule):
            return self.firings == other.firings
        if isinstance(other, (list, tuple)):
            return self.firings == tuple(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.firings)

    def counts(self) -> Counter:
        """Firings per actor."""
        return Counter(self.firings)

    def runs(self) -> list[tuple[str, int]]:
        """Maximal runs of consecutive identical firings."""
        runs: list[tuple[str, int]] = []
        for actor in self.firings:
            if runs and runs[-1][0] == actor:
                runs[-1] = (actor, runs[-1][1] + 1)
            else:
                runs.append((actor, 1))
        return runs

    def __str__(self) -> str:
        parts = []
        for actor, count in self.runs():
            parts.append(actor if count == 1 else f"({actor})^{count}")
        return " ".join(parts)

    def __repr__(self) -> str:
        return f"SequentialSchedule({self})"


def find_sequential_schedule(
    graph: CSDFGraph,
    bindings: Mapping | None = None,
    policy: str = "grouped",
    repetitions: Mapping[str, int] | None = None,
    actor_order: Sequence[str] | None = None,
) -> SequentialSchedule:
    """Construct a PASS by symbolic execution.

    Parameters
    ----------
    graph, bindings:
        The graph and parameter values (parametric graphs must be bound).
    policy:
        ``"grouped"`` or ``"round_robin"`` (see module docstring).
    repetitions:
        Target firing counts; defaults to the repetition vector.  The
        TPDF liveness analysis passes *local solutions* here to schedule
        a clustered subgraph.
    actor_order:
        Deterministic candidate order; defaults to insertion order.

    Raises
    ------
    DeadlockError
        When execution stalls before reaching the target counts.  The
        exception carries the blocked actors and the partial schedule.
    """
    if policy not in POLICIES:
        raise ValueError(f"unknown policy {policy!r}; pick one of {POLICIES}")
    targets = dict(repetitions) if repetitions is not None else concrete_repetition_vector(graph, bindings)
    order = list(actor_order) if actor_order is not None else [
        name for name in graph.actor_names() if name in targets
    ]
    state = TokenState(graph, bindings)
    remaining = dict(targets)
    firings: list[str] = []

    def fire(actor: str) -> None:
        state.fire(actor)
        remaining[actor] -= 1
        firings.append(actor)

    while any(count > 0 for count in remaining.values()):
        progressed = False
        for actor in order:
            if remaining[actor] <= 0 or not state.can_fire(actor):
                continue
            fire(actor)
            progressed = True
            if policy == "grouped":
                while remaining[actor] > 0 and state.can_fire(actor):
                    fire(actor)
        if not progressed:
            blocked = [actor for actor, count in remaining.items() if count > 0]
            raise DeadlockError(
                f"graph {graph.name!r} deadlocks under policy {policy!r}: "
                f"actors {blocked} cannot complete the iteration",
                blocked=blocked,
                partial_schedule=firings,
            )
    return SequentialSchedule(firings)


def validate_schedule(
    graph: CSDFGraph,
    schedule: Iterable[str],
    bindings: Mapping | None = None,
    require_iteration: bool = True,
) -> TokenState:
    """Replay a schedule, checking admissibility.

    Verifies no channel ever underflows; when ``require_iteration`` is
    set, additionally checks the firing counts equal the repetition
    vector and every channel returns to its initial fill level
    (Definition 1: the schedule can repeat forever in bounded memory).
    Returns the final :class:`TokenState` (whose ``peak`` field gives
    the buffer sizes this schedule needs).
    """
    state = TokenState(graph, bindings)
    sequence = list(schedule)
    try:
        state.run(sequence)
    except SimulationError as exc:
        raise DeadlockError(f"schedule is not admissible: {exc}") from exc
    if require_iteration:
        q = concrete_repetition_vector(graph, bindings)
        counts = Counter(sequence)
        if dict(counts) != q:
            raise DeadlockError(
                f"schedule firing counts {dict(counts)} differ from the "
                f"repetition vector {q}"
            )
        if not state.matches_initial_state():
            raise DeadlockError(
                f"schedule does not return the graph to its initial state: "
                f"{state.tokens}"
            )
    return state


def is_live(graph: CSDFGraph, bindings: Mapping | None = None) -> bool:
    """Liveness via schedule construction (round-robin is complete:
    if any PASS exists, interleaved execution finds one).

    Memoized per graph version; the schedule probe is untimed (it only
    counts tokens), so the verdict is carried across binding-only
    version bumps (execution-time edits)."""
    return cached(graph, ("is_live", bindings_key(bindings)),
                  lambda: _is_live(graph, bindings))


def _is_live(graph: CSDFGraph, bindings: Mapping | None) -> bool:
    try:
        find_sequential_schedule(graph, bindings, policy="round_robin")
    except DeadlockError:
        return False
    return True
