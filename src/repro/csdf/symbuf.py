"""Symbolic per-iteration buffer bounds.

Fig. 8's closed forms (``Buff_TPDF = 3 + beta(12N + L)``,
``Buff_CSDF = beta(17N + L)``) are *measured* by the sweep in
:mod:`repro.apps.ofdm.buffers`; this module derives them **symbolically**:
for each channel, the tokens present never exceed

    phi*(e)  +  X_src(q_src)        (initial tokens + one iteration's traffic)

and for single-appearance schedules (each actor's firings contiguous —
the shape the paper's applications use, where the repetition vector is
all-ones) the bound is *tight*: the producer completes all its firings
before the consumer starts, so the peak equals initial-plus-traffic
exactly.

The result is a polynomial in the graph parameters, directly comparable
to the paper's formulas (the EXT4 bench asserts polynomial equality).

Beyond reporting, the bounds feed two consumers: the ``buffers`` CLI
subcommand (symbolic mode), and the **warm start** of the per-channel
binary search in
:func:`repro.csdf.throughput.min_buffers_for_full_throughput` — the
bound evaluated at a binding caps the search range far below the
unconstrained execution peak on imbalanced pipelines.

Examples
--------
>>> from repro.csdf import CSDFGraph
>>> from repro.csdf.symbuf import symbolic_channel_bounds, symbolic_total_bound
>>> from repro.symbolic import Param
>>> p = Param("p")
>>> g = CSDFGraph("pair")
>>> _ = g.add_actor("a")
>>> _ = g.add_actor("b")
>>> _ = g.add_channel("ab", "a", "b", production=p, consumption=1,
...                   initial_tokens=2)
>>> str(symbolic_channel_bounds(g)["ab"])
'p + 2'
>>> str(symbolic_total_bound(g))
'p + 2'
"""

from __future__ import annotations

from ..symbolic import Poly
from .analysis import base_solution
from .graph import CSDFGraph


def symbolic_channel_bounds(graph: CSDFGraph) -> dict[str, Poly]:
    """Per-channel symbolic peak bound: ``phi*(e) + X_src(tau) * r_src``."""
    r = base_solution(graph)
    bounds: dict[str, Poly] = {}
    for channel in graph.channels.values():
        tau = graph.tau(channel.src)
        traffic = channel.production.cumulative(tau) * r[channel.src]
        bounds[channel.name] = Poly.const(channel.initial_tokens) + traffic
    return bounds


def symbolic_total_bound(graph: CSDFGraph) -> Poly:
    """Total symbolic buffer bound (the Fig. 8 y-axis, symbolically)."""
    total = Poly()
    for bound in symbolic_channel_bounds(graph).values():
        total = total + bound
    return total


def bound_is_tight_for_single_appearance(graph: CSDFGraph) -> bool:
    """The bound is attained by any single-appearance schedule in which
    every producer completes before its consumer starts — always true
    for acyclic graphs (topological-order grouped schedules exist).
    Cyclic graphs may not admit such schedules, so the bound, while
    still sound, can be conservative there."""
    import networkx as nx

    return nx.is_directed_acyclic_graph(
        nx.DiGraph([(c.src, c.dst) for c in graph.channels.values()
                    if not c.is_selfloop()])
    )
